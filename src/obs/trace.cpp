#include "obs/trace.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "obs/json.hpp"

namespace pdc::obs {

Tracer::Tracer(int nranks) {
  if (nranks < 1) throw std::invalid_argument("Tracer: nranks must be >= 1");
  tracks_.resize(static_cast<std::size_t>(nranks));
}

Tracer::Track& Tracer::track(int rank) {
  return tracks_.at(static_cast<std::size_t>(rank));
}

const std::vector<TraceEvent>& Tracer::events(int rank) const {
  return tracks_.at(static_cast<std::size_t>(rank)).events;
}

MetricsRegistry& Tracer::metrics(int rank) {
  return tracks_.at(static_cast<std::size_t>(rank)).metrics;
}

const MetricsRegistry& Tracer::metrics(int rank) const {
  return tracks_.at(static_cast<std::size_t>(rank)).metrics;
}

MetricsRegistry Tracer::merged_metrics() const {
  MetricsRegistry merged;
  for (const auto& t : tracks_) merged.merge(t.metrics);
  return merged;
}

void RankTracer::do_complete(std::string_view name, std::string_view cat,
                             double begin_s, double end_s, std::uint64_t bytes,
                             std::uint64_t n) const {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kComplete;
  ev.name = name;
  ev.cat = cat;
  ev.begin_s = begin_s;
  ev.end_s = end_s;
  ev.bytes = bytes;
  ev.n = n;
  tracer_->track(rank_).events.push_back(std::move(ev));
}

void RankTracer::do_complete_event(TraceEvent ev) const {
  ev.kind = TraceEvent::Kind::kComplete;
  tracer_->track(rank_).events.push_back(std::move(ev));
}

void RankTracer::do_instant(std::string_view name, std::string_view cat) const {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kInstant;
  ev.name = name;
  ev.cat = cat;
  ev.begin_s = now();
  tracer_->track(rank_).events.push_back(std::move(ev));
}

void RankTracer::do_counter(std::string_view name, double value) const {
  TraceEvent ev;
  ev.kind = TraceEvent::Kind::kCounter;
  ev.name = name;
  ev.begin_s = now();
  ev.value = value;
  tracer_->track(rank_).events.push_back(std::move(ev));
}

void RankTracer::do_count(std::string_view name, std::uint64_t delta) const {
  tracer_->track(rank_).metrics.counter(std::string(name)).add(delta);
}

void RankTracer::do_observe(std::string_view name, double value) const {
  tracer_->track(rank_).metrics.histogram(std::string(name)).observe(value);
}

void RankTracer::do_gauge(std::string_view name, double value) const {
  tracer_->track(rank_).metrics.gauge(std::string(name)).set(value);
}

namespace {

/// Modeled seconds -> trace microseconds (Chrome's native unit).
std::string trace_us(double seconds) { return json_number(seconds * 1e6); }

void append_event_json(std::string& out, const TraceEvent& ev, int rank) {
  const std::string common = "\"pid\":0,\"tid\":" + std::to_string(rank) +
                             ",\"ts\":" + trace_us(ev.begin_s);
  switch (ev.kind) {
    case TraceEvent::Kind::kComplete: {
      out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
             json_escape(ev.cat) + "\",\"ph\":\"X\"," + common +
             ",\"dur\":" + trace_us(ev.end_s - ev.begin_s);
      const bool any_arg = ev.bytes != kNoArg || ev.n != kNoArg ||
                           ev.site != kNoArg || ev.comm != kNoArg ||
                           ev.seq != kNoArg || ev.peer != kNoArg ||
                           ev.depth != kNoArg;
      if (any_arg) {
        out += ",\"args\":{";
        bool first = true;
        const auto arg = [&](const char* key, std::uint64_t v) {
          if (v == kNoArg) return;
          if (!first) out += ",";
          first = false;
          out += std::string("\"") + key + "\":" + std::to_string(v);
        };
        arg("bytes", ev.bytes);
        arg("n", ev.n);
        if (ev.site != kNoArg) {
          // Site hashes render as hex to match the lockstep reports.
          char hex[17];
          std::snprintf(hex, sizeof(hex), "%016llx",
                        static_cast<unsigned long long>(ev.site));
          if (!first) out += ",";
          first = false;
          out += std::string("\"site\":\"") + hex + "\"";
        }
        arg("comm", ev.comm);
        arg("seq", ev.seq);
        arg("peer", ev.peer);
        arg("depth", ev.depth);
        out += "}";
      }
      out += "}";
      break;
    }
    case TraceEvent::Kind::kInstant:
      out += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
             json_escape(ev.cat) + "\",\"ph\":\"i\",\"s\":\"t\"," + common +
             "}";
      break;
    case TraceEvent::Kind::kCounter:
      out += "{\"name\":\"" + json_escape(ev.name) + "\",\"ph\":\"C\"," +
             common + ",\"args\":{\"value\":" + json_number(ev.value) + "}}";
      break;
  }
}

}  // namespace

std::string Tracer::chrome_json(
    const std::vector<std::pair<int, TraceEvent>>* extra) const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (int r = 0; r < nranks(); ++r) {
    // Name the track so Perfetto shows "rank N" instead of a bare tid.
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(r) + ",\"args\":{\"name\":\"rank " +
           std::to_string(r) + "\"}}";
    for (const auto& ev : tracks_[static_cast<std::size_t>(r)].events) {
      out += ",\n";
      append_event_json(out, ev, r);
    }
    if (extra) {
      for (const auto& [rank, ev] : *extra) {
        if (rank != r) continue;
        out += ",\n";
        append_event_json(out, ev, r);
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

void Tracer::write_chrome_json(
    const std::string& path,
    const std::vector<std::pair<int, TraceEvent>>* extra) const {
  // pdc: io-wrapper(observer export after the modeled run; never on the modeled timeline)
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("Tracer: cannot create " + path);
  const std::string doc = chrome_json(extra);
  if (std::fwrite(doc.data(), 1, doc.size(), f.get()) != doc.size()) {
    throw std::runtime_error("Tracer: short write to " + path);
  }
}

}  // namespace pdc::obs
