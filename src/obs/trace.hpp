#pragma once

// Per-rank span/event recorder keyed to the MODELED timeline.
//
// Every rank of an SPMD run is one track.  Instrumented code opens spans —
// sample draw, SSE histogram build, combiner exchange, gini evaluation,
// alive re-evaluation, partition pass, small-node queue drain, each
// collective primitive, each disk request — whose begin/end timestamps are
// read from the rank's modeled Clock, so the exported trace shows the run
// exactly as the cost model scheduled it: where compute, communication,
// I/O and idle time went, on which rank, and why.  Export is Chrome
// trace_event JSON (complete "X", counter "C" and metadata "M" events),
// loadable in Perfetto or chrome://tracing; modeled seconds map to trace
// microseconds.
//
// Zero-cost when disabled: RankTracer is a nullable view.  With no backing
// Tracer every call is an inlined branch-and-return and SpanGuard records
// nothing — the same pattern as the null-clock CostHooks.  Instrumentation
// never mutates the Clock, so a traced run and an untraced run produce
// bit-identical modeled costs and trees.
//
// Threading: Tracer preallocates one track (events + metrics) per rank;
// each rank thread writes only its own track, so no locking is needed —
// the same confinement discipline as the runtime's Clock vector.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mp/clock.hpp"
#include "obs/metrics.hpp"

namespace pdc::obs {

/// Sentinel for "argument not set" on optional u64 trace args.
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

struct TraceEvent {
  enum class Kind : std::uint8_t { kComplete, kInstant, kCounter };

  Kind kind = Kind::kComplete;
  std::string name;
  std::string cat;
  double begin_s = 0.0;          ///< modeled seconds
  double end_s = 0.0;            ///< kComplete only
  std::uint64_t bytes = kNoArg;  ///< optional "bytes" arg
  std::uint64_t n = kNoArg;      ///< optional "n" arg (records, tasks, ...)
  double value = 0.0;            ///< kCounter only

  // Synchronization identity (obs/critpath.hpp): collectives carry the
  // lockstep site hash, their communicator id and per-communicator
  // sequence number; p2p spans carry the peer's world rank and the
  // sender-channel sequence number.  Grouping spans across tracks by
  // (comm, seq) — or matching send/recv pairs by (peer, seq) — recovers
  // every cross-rank dependency edge of the run offline.
  std::uint64_t site = kNoArg;  ///< collective call-site hash
  std::uint64_t comm = kNoArg;  ///< communicator id (collectives)
  std::uint64_t seq = kNoArg;   ///< collective / sender-channel sequence
  std::uint64_t peer = kNoArg;  ///< other endpoint's world rank (p2p)
  std::uint64_t depth = kNoArg; ///< tree depth of the enclosing task
};

class Tracer;

/// The nullable per-rank handle instrumented code holds (by value).
class RankTracer {
 public:
  RankTracer() = default;
  RankTracer(Tracer* tracer, int rank, const mp::Clock* clock)
      : tracer_(tracer), rank_(rank), clock_(clock) {}

  bool enabled() const { return tracer_ != nullptr; }
  int rank() const { return rank_; }

  /// This rank's position on the modeled timeline.
  double now() const { return clock_ ? clock_->total() : 0.0; }

  /// Records a completed span [begin_s, end_s].
  void complete(std::string_view name, std::string_view cat, double begin_s,
                double end_s, std::uint64_t bytes = kNoArg,
                std::uint64_t n = kNoArg) const {
    if (tracer_) do_complete(name, cat, begin_s, end_s, bytes, n);
  }

  /// Records a fully-populated complete event (kind is forced).  Used by
  /// SpanGuard so spans can carry the synchronization-identity args.
  void complete_event(TraceEvent ev) const {
    if (tracer_) do_complete_event(std::move(ev));
  }

  /// Records a zero-duration marker at now().
  void instant(std::string_view name, std::string_view cat) const {
    if (tracer_) do_instant(name, cat);
  }

  /// Records a counter sample at now() ("C" event: value over time).
  void counter(std::string_view name, double value) const {
    if (tracer_) do_counter(name, value);
  }

  // Metrics shorthands on this rank's registry (no-ops when disabled).
  void count(std::string_view name, std::uint64_t delta = 1) const {
    if (tracer_) do_count(name, delta);
  }
  void observe(std::string_view name, double value) const {
    if (tracer_) do_observe(name, value);
  }
  void gauge(std::string_view name, double value) const {
    if (tracer_) do_gauge(name, value);
  }

 private:
  void do_complete(std::string_view name, std::string_view cat, double begin_s,
                   double end_s, std::uint64_t bytes, std::uint64_t n) const;
  void do_complete_event(TraceEvent ev) const;
  void do_instant(std::string_view name, std::string_view cat) const;
  void do_counter(std::string_view name, double value) const;
  void do_count(std::string_view name, std::uint64_t delta) const;
  void do_observe(std::string_view name, double value) const;
  void do_gauge(std::string_view name, double value) const;

  Tracer* tracer_ = nullptr;
  int rank_ = 0;
  const mp::Clock* clock_ = nullptr;
};

/// RAII span: opens at construction (begin = rank's modeled now), records a
/// complete event when closed or destroyed.  Safe to use unconditionally —
/// a guard over a disabled RankTracer does nothing.
class SpanGuard {
 public:
  SpanGuard() = default;
  SpanGuard(RankTracer tracer, std::string_view name, std::string_view cat,
            std::uint64_t bytes = kNoArg, std::uint64_t n = kNoArg)
      : tracer_(tracer) {
    if (tracer_.enabled()) {
      live_ = true;
      ev_.name = name;
      ev_.cat = cat;
      ev_.bytes = bytes;
      ev_.n = n;
      ev_.begin_s = tracer_.now();
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;
  SpanGuard(SpanGuard&& o) noexcept { *this = std::move(o); }
  SpanGuard& operator=(SpanGuard&& o) noexcept {
    if (this != &o) {
      close();
      tracer_ = o.tracer_;
      live_ = std::exchange(o.live_, false);
      ev_ = std::move(o.ev_);
    }
    return *this;
  }

  ~SpanGuard() { close(); }

  /// Attach args discovered mid-span (e.g. bytes known only after
  /// serialization).
  void set_bytes(std::uint64_t bytes) { ev_.bytes = bytes; }
  void set_n(std::uint64_t n) { ev_.n = n; }
  void set_depth(std::uint64_t depth) { ev_.depth = depth; }

  /// Stamp the synchronization identity of a collective span (lockstep
  /// site hash, communicator id, per-communicator sequence number) so
  /// obs/critpath.hpp can align the same collective across rank tracks.
  void set_sync(std::uint64_t site, std::uint64_t comm, std::uint64_t seq) {
    ev_.site = site;
    ev_.comm = comm;
    ev_.seq = seq;
  }

  /// Stamp the endpoint identity of a p2p span (peer's world rank plus
  /// the sender-channel sequence number that matches send to recv).
  void set_channel(std::uint64_t peer, std::uint64_t seq) {
    ev_.peer = peer;
    ev_.seq = seq;
  }

  void close() {
    if (live_) {
      live_ = false;
      ev_.end_s = tracer_.now();
      tracer_.complete_event(std::move(ev_));
    }
  }

 private:
  RankTracer tracer_;
  bool live_ = false;
  TraceEvent ev_;
};

/// Whole-run collector: one track of events + one metrics registry per
/// rank.  Construct before Runtime::run, pass to it, export afterwards.
class Tracer {
 public:
  explicit Tracer(int nranks);

  int nranks() const { return static_cast<int>(tracks_.size()); }

  /// The per-rank handle; `clock` supplies the modeled timestamps.
  RankTracer rank(int r, const mp::Clock* clock) {
    return RankTracer(this, r, clock);
  }

  const std::vector<TraceEvent>& events(int rank) const;
  MetricsRegistry& metrics(int rank);
  const MetricsRegistry& metrics(int rank) const;

  /// All ranks' registries folded into one (counters add, gauges max,
  /// histograms merge).
  MetricsRegistry merged_metrics() const;

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one thread
  /// (tid = rank) per track and a thread_name metadata event per rank.
  /// `extra` merges additional per-rank events into the document (the
  /// critical-path overlay from obs/profile.hpp); the recorded tracks are
  /// never mutated.
  std::string chrome_json(
      const std::vector<std::pair<int, TraceEvent>>* extra = nullptr) const;
  void write_chrome_json(
      const std::string& path,
      const std::vector<std::pair<int, TraceEvent>>* extra = nullptr) const;

 private:
  friend class RankTracer;

  struct Track {
    std::vector<TraceEvent> events;
    MetricsRegistry metrics;
  };

  Track& track(int rank);

  std::vector<Track> tracks_;
};

}  // namespace pdc::obs
