#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pdc::obs {

Json Json::make_bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::make_number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::make_string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::make_array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::make_object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("Json: not a bool");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("Json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("Json: not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  return array_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  throw std::runtime_error("Json: size() needs an array or object");
}

const Json& Json::at(std::size_t i) const {
  const auto& v = items();
  if (i >= v.size()) throw std::runtime_error("Json: index out of range");
  return v[i];
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (!v) throw std::runtime_error("Json: missing key " + std::string(key));
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  return object_;
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::runtime_error("Json: not an array");
  array_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) throw std::runtime_error("Json: not an object");
  for (auto& [k, old] : object_) {
    if (k == key) {
      old = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Json::dump() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kNumber: return json_number(number_);
    case Type::kString: return "\"" + json_escape(string_) + "\"";
    case Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ",";
        out += array_[i].dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(k) + "\":" + v.dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json::make_string(parse_string());
    if (consume_literal("true")) return Json::make_bool(true);
    if (consume_literal("false")) return Json::make_bool(false);
    if (consume_literal("null")) return Json();
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The emitters only produce \u for control characters; decode
          // the BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    return Json::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace pdc::obs
