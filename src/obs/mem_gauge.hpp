#pragma once

// Per-rank resident-bytes accounting for the out-of-core contract.
//
// The static analyzer (scripts/pdc_analyze.py, check PDA200) proves that no
// scan loop materializes records outside the annotated in-core zones.
// This gauge is the runtime half of that argument: every annotated
// zone charges the bytes it holds while they are resident, so a sizeup run
// can assert that the per-rank high-water mark stays bounded by the sample,
// histogram and small-node budgets while the dataset grows 10x underneath.
//
// The gauge itself is passive arithmetic — it never allocates and never
// touches the modeled clock — so charging it inside kernels is free of
// observer effects on either the simulated or the host timeline.

#include <algorithm>
#include <cstddef>

#include "obs/trace.hpp"

namespace pdc::obs {

/// Tracks currently-resident bytes and the largest value ever reached.
/// Publishes `mem.highwater_bytes` through the (nullable) RankTracer each
/// time a new high-water mark is set, so the metric lands in run reports
/// next to the modeled-clock buckets without extra plumbing.
class MemGauge {
 public:
  MemGauge() = default;
  explicit MemGauge(RankTracer tracer) : tracer_(tracer) {}

  void charge(std::size_t bytes) {
    current_ += bytes;
    if (current_ > highwater_) {
      highwater_ = current_;
      tracer_.gauge("mem.highwater_bytes",
                    static_cast<double>(highwater_));
    }
  }

  /// Releasing more than is held clamps to zero rather than wrapping: a
  /// zone that frees a buffer it never charged is a bug we want visible in
  /// the high-water mark, not an underflow that poisons it.
  void release(std::size_t bytes) { current_ -= std::min(bytes, current_); }

  std::size_t current_bytes() const { return current_; }
  std::size_t highwater_bytes() const { return highwater_; }

 private:
  RankTracer tracer_{};
  std::size_t current_ = 0;
  std::size_t highwater_ = 0;
};

/// RAII charge for a zone whose buffer lives for a lexical scope (the
/// small-node load, the alive-point harvest).  `add` grows the charge as
/// the buffer grows; the destructor releases the full amount.
class MemCharge {
 public:
  MemCharge(MemGauge* gauge, std::size_t bytes) : gauge_(gauge) {
    add(bytes);
  }
  MemCharge(const MemCharge&) = delete;
  MemCharge& operator=(const MemCharge&) = delete;
  ~MemCharge() {
    if (gauge_) gauge_->release(held_);
  }

  void add(std::size_t more) {
    held_ += more;
    if (gauge_) gauge_->charge(more);
  }

 private:
  MemGauge* gauge_ = nullptr;
  std::size_t held_ = 0;
};

}  // namespace pdc::obs
