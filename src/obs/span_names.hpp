#pragma once

// The span-name registry: every trace span name the instrumentation may
// construct, in one place.  The critical-path profiler's attribution
// rollups (obs/profile.hpp) key on these strings, so a typo'd literal at
// an instrumentation site would silently open a new bucket instead of
// feeding the right one; pdc-lint rule PDC007 flags any span construction
// whose name literal is missing from this file.
//
// Names are grouped by role: phase spans (what the rank was working on),
// communication primitives (one span per mp::Comm call, cat "comm"),
// atomic disk events (cat "io"/"fault", each advances the modeled clock),
// instant markers, and the profiler's own critical-path overlay names.

#include <string_view>

namespace pdc::obs::span_names {

// ------------------------------------------------------------- phases ---
inline constexpr std::string_view kMaterialize = "materialize";
inline constexpr std::string_view kSampleDraw = "sample-draw";
inline constexpr std::string_view kSampleReplication = "sample-replication";
inline constexpr std::string_view kSubtreeAssembly = "subtree-assembly";
inline constexpr std::string_view kSolveSequential = "solve-sequential";
inline constexpr std::string_view kHistogramBuild = "histogram-build";
inline constexpr std::string_view kGiniEvaluation = "gini-evaluation";
inline constexpr std::string_view kAliveEvaluation = "alive-evaluation";
inline constexpr std::string_view kPartitionPass = "partition-pass";
inline constexpr std::string_view kPresort = "presort";
inline constexpr std::string_view kSplitEval = "split-eval";
inline constexpr std::string_view kCombinerExchange = "combiner-exchange";
inline constexpr std::string_view kVotingExchange = "voting-exchange";
inline constexpr std::string_view kLargeNode = "large-node";
inline constexpr std::string_view kRedistribute = "redistribute";
inline constexpr std::string_view kSmallNodeDrain = "small-node-drain";
inline constexpr std::string_view kCheckpointWrite = "checkpoint-write";
inline constexpr std::string_view kCheckpointRestore = "checkpoint-restore";
inline constexpr std::string_view kPrune = "prune";
inline constexpr std::string_view kEvaluate = "evaluate";

// -------------------------------------- communication primitives (mp) ---
inline constexpr std::string_view kSend = "send";
inline constexpr std::string_view kRecv = "recv";
inline constexpr std::string_view kBarrier = "barrier";
inline constexpr std::string_view kAllToAllBroadcast = "all_to_all_broadcast";
inline constexpr std::string_view kGather = "gather";
inline constexpr std::string_view kBroadcast = "broadcast";
inline constexpr std::string_view kAllReduce = "all_reduce";
inline constexpr std::string_view kAllReduceVec = "all_reduce_vec";
inline constexpr std::string_view kPrefixSum = "prefix_sum";
inline constexpr std::string_view kMinLoc = "min_loc";
inline constexpr std::string_view kAllToAll = "all_to_all";

// --------------------------------------------- atomic disk events (io) ---
inline constexpr std::string_view kDiskRead = "disk_read";
inline constexpr std::string_view kDiskWrite = "disk_write";
inline constexpr std::string_view kDiskReadAsync = "disk_read_async";
inline constexpr std::string_view kDiskWriteAsync = "disk_write_async";
inline constexpr std::string_view kDiskRetryBackoff = "disk_retry_backoff";

// ------------------------------------------------- serving (pdc::serve) ---
inline constexpr std::string_view kServeBatch = "serve.batch";
inline constexpr std::string_view kServeSwap = "serve.swap";

// ----------------------------------------------------instant markers ---
inline constexpr std::string_view kLockstepDivergence = "lockstep.divergence";
inline constexpr std::string_view kClockReset = "clock-reset";

// ------------------------------------- critical-path overlay (profile) ---
inline constexpr std::string_view kCritCompute = "crit.compute";
inline constexpr std::string_view kCritComm = "crit.comm";
inline constexpr std::string_view kCritIo = "crit.io";
inline constexpr std::string_view kCritIdle = "crit.idle";

/// Every registered name.  pdc-lint PDC007 parses this file's string
/// literals, so adding a constant above is all a new span needs.
inline constexpr std::string_view kAll[] = {
    kMaterialize,    kSampleDraw,     kSampleReplication,
    kSubtreeAssembly, kSolveSequential, kHistogramBuild,
    kGiniEvaluation, kAliveEvaluation, kPartitionPass,
    kPresort,        kSplitEval,      kCombinerExchange,
    kVotingExchange, kLargeNode,      kRedistribute,   kSmallNodeDrain,
    kCheckpointWrite, kCheckpointRestore, kPrune,
    kEvaluate,       kSend,           kRecv,
    kBarrier,        kAllToAllBroadcast, kGather,
    kBroadcast,      kAllReduce,      kAllReduceVec,
    kPrefixSum,      kMinLoc,         kAllToAll,
    kDiskRead,       kDiskWrite,      kDiskReadAsync,
    kDiskWriteAsync, kDiskRetryBackoff, kServeBatch,
    kServeSwap,      kLockstepDivergence,
    kClockReset,     kCritCompute,    kCritComm,
    kCritIo,         kCritIdle,
};

inline constexpr bool is_registered(std::string_view name) {
  for (const auto& s : kAll) {
    if (s == name) return true;
  }
  return false;
}

/// Point-to-point span names (the only comm spans without a collective
/// site stamp).
inline constexpr bool is_p2p(std::string_view name) {
  return name == kSend || name == kRecv;
}

/// Disk events that advance the rank's modeled clock; everything they
/// cover is visible I/O time (the hidden async remainder never produces
/// a span).  kDiskRetryBackoff is cat "fault" but still charges io_s.
inline constexpr bool is_io_atomic(std::string_view name) {
  return name == kDiskRead || name == kDiskWrite || name == kDiskReadAsync ||
         name == kDiskWriteAsync || name == kDiskRetryBackoff;
}

}  // namespace pdc::obs::span_names
