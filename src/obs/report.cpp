#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "obs/json.hpp"

namespace pdc::obs {

double RunReport::parallel_time_s() const {
  double t = 0.0;
  for (const auto& r : ranks) t = std::max(t, r.clock.total());
  return t;
}

double RunReport::balance() const {
  if (ranks.empty()) return 1.0;
  double max_busy = 0.0;
  double sum_busy = 0.0;
  for (const auto& r : ranks) {
    const double busy = r.clock.compute_s + r.clock.comm_s + r.clock.io_s;
    max_busy = std::max(max_busy, busy);
    sum_busy += busy;
  }
  if (max_busy == 0.0) return 1.0;
  return sum_busy / (static_cast<double>(ranks.size()) * max_busy);
}

io::IoStats RunReport::total_io() const {
  io::IoStats total;
  for (const auto& r : ranks) total += r.io;
  return total;
}

namespace {

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string RunReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"pdc.run_report.v1\",\n";
  out += "  \"classifier\": \"" + json_escape(classifier) + "\",\n";
  out += "  \"nprocs\": " + std::to_string(nprocs) + ",\n";
  out += "  \"records\": " + u64(records) + ",\n";
  out += "  \"parallel_time_s\": " + json_number(parallel_time_s()) + ",\n";
  out += "  \"balance\": " + json_number(balance()) + ",\n";
  out += "  \"ranks\": [\n";
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const auto& rk = ranks[r];
    out += "    {\"rank\": " + std::to_string(r) +
           ", \"compute_s\": " + json_number(rk.clock.compute_s) +
           ", \"comm_s\": " + json_number(rk.clock.comm_s) +
           ", \"io_s\": " + json_number(rk.clock.io_s) +
           ", \"io_hidden_s\": " + json_number(rk.clock.io_hidden_s) +
           ", \"idle_s\": " + json_number(rk.clock.idle_s) +
           ", \"total_s\": " + json_number(rk.clock.total()) +
           ", \"read_ops\": " + u64(rk.io.read_ops) +
           ", \"write_ops\": " + u64(rk.io.write_ops) +
           ", \"bytes_read\": " + u64(rk.io.bytes_read) +
           ", \"bytes_written\": " + u64(rk.io.bytes_written) + "}";
    out += (r + 1 < ranks.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"tree\": {\"nodes\": " + u64(tree.nodes) +
         ", \"leaves\": " + u64(tree.leaves) +
         ", \"depth\": " + std::to_string(tree.depth) + "},\n";
  if (!lockstep_divergence.empty()) {
    out += "  \"lockstep_divergence\": [\n";
    for (std::size_t i = 0; i < lockstep_divergence.size(); ++i) {
      const auto& e = lockstep_divergence[i];
      char site_hex[17];
      std::snprintf(site_hex, sizeof(site_hex), "%016llx",
                    static_cast<unsigned long long>(e.site));
      out += "    {\"rank\": " + std::to_string(e.rank) +
             ", \"global_rank\": " + std::to_string(e.global_rank) +
             ", \"site\": \"" + site_hex + "\", \"seq\": " + u64(e.seq) +
             ", \"prim\": \"" + json_escape(e.prim) + "\", \"where\": \"" +
             json_escape(e.where) + "\"}";
      out += (i + 1 < lockstep_divergence.size()) ? ",\n" : "\n";
    }
    out += "  ],\n";
  }
  if (accuracy >= 0.0) {
    out += "  \"accuracy\": " + json_number(accuracy) + ",\n";
  }
  out += "  \"metrics\": {\n";
  out += "    \"counters\": {";
  {
    bool first = true;
    for (const auto& [name, c] : metrics.counters()) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + json_escape(name) + "\": " + u64(c.value);
    }
  }
  out += "},\n    \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, g] : metrics.gauges()) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + json_escape(name) + "\": " + json_number(g.value);
    }
  }
  out += "},\n    \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : metrics.histograms()) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + json_escape(name) + "\": {\"count\": " + u64(h.count) +
             ", \"sum\": " + json_number(h.sum) +
             ", \"min\": " + json_number(h.min) +
             ", \"max\": " + json_number(h.max) +
             ", \"mean\": " + json_number(h.mean()) + "}";
    }
  }
  out += "}\n  }\n}\n";
  return out;
}

void RunReport::write_json(const std::string& path) const {
  // pdc: io-wrapper(observer export after the modeled run; never on the modeled timeline)
  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f) std::fclose(f);
    }
  };
  std::unique_ptr<std::FILE, FileCloser> f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("RunReport: cannot create " + path);
  const std::string doc = to_json();
  if (std::fwrite(doc.data(), 1, doc.size(), f.get()) != doc.size()) {
    throw std::runtime_error("RunReport: short write to " + path);
  }
}

RunReport RunReport::from_json(std::string_view text) {
  const Json doc = Json::parse(text);
  if (const Json* schema = doc.find("schema");
      !schema || schema->as_string() != "pdc.run_report.v1") {
    throw std::runtime_error("RunReport: unknown schema");
  }

  RunReport out;
  out.classifier = doc.at("classifier").as_string();
  out.nprocs = static_cast<int>(doc.at("nprocs").as_number());
  out.records = static_cast<std::uint64_t>(doc.at("records").as_number());

  for (const auto& rj : doc.at("ranks").items()) {
    Rank rk;
    rk.clock.compute_s = rj.at("compute_s").as_number();
    rk.clock.comm_s = rj.at("comm_s").as_number();
    rk.clock.io_s = rj.at("io_s").as_number();
    // Reports written before the async pipeline lack io_hidden_s.
    if (const Json* hidden = rj.find("io_hidden_s")) {
      rk.clock.io_hidden_s = hidden->as_number();
    }
    rk.clock.idle_s = rj.at("idle_s").as_number();
    rk.io.read_ops = static_cast<std::size_t>(rj.at("read_ops").as_number());
    rk.io.write_ops = static_cast<std::size_t>(rj.at("write_ops").as_number());
    rk.io.bytes_read =
        static_cast<std::size_t>(rj.at("bytes_read").as_number());
    rk.io.bytes_written =
        static_cast<std::size_t>(rj.at("bytes_written").as_number());
    out.ranks.push_back(rk);
  }

  const Json& tj = doc.at("tree");
  out.tree.nodes = static_cast<std::uint64_t>(tj.at("nodes").as_number());
  out.tree.leaves = static_cast<std::uint64_t>(tj.at("leaves").as_number());
  out.tree.depth = static_cast<std::int32_t>(tj.at("depth").as_number());

  if (const Json* lock = doc.find("lockstep_divergence")) {
    for (const auto& ej : lock->items()) {
      LockstepRank e;
      e.rank = static_cast<int>(ej.at("rank").as_number());
      e.global_rank = static_cast<int>(ej.at("global_rank").as_number());
      e.site = std::strtoull(ej.at("site").as_string().c_str(), nullptr, 16);
      e.seq = static_cast<std::uint64_t>(ej.at("seq").as_number());
      e.prim = ej.at("prim").as_string();
      e.where = ej.at("where").as_string();
      out.lockstep_divergence.push_back(std::move(e));
    }
  }

  if (const Json* acc = doc.find("accuracy")) {
    out.accuracy = acc->as_number();
  }

  const Json& mj = doc.at("metrics");
  for (const auto& [name, v] : mj.at("counters").members()) {
    out.metrics.counter(name).value =
        static_cast<std::uint64_t>(v.as_number());
  }
  for (const auto& [name, v] : mj.at("gauges").members()) {
    out.metrics.gauge(name).value = v.as_number();
  }
  for (const auto& [name, v] : mj.at("histograms").members()) {
    HistogramSummary& h = out.metrics.histogram(name);
    h.count = static_cast<std::uint64_t>(v.at("count").as_number());
    h.sum = v.at("sum").as_number();
    // An empty histogram serializes min/max (±inf) as null.
    if (v.at("min").is_number()) h.min = v.at("min").as_number();
    if (v.at("max").is_number()) h.max = v.at("max").as_number();
  }
  return out;
}

}  // namespace pdc::obs
