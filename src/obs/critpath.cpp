#include "obs/critpath.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "obs/span_names.hpp"

namespace pdc::obs {

namespace {

/// Sorts a rank's ops by position and materializes the pure-compute gaps
/// between them (plus the leading and trailing stretches), so the op list
/// tiles [0, end_s] exactly.  The cost hooks charge compute inside phase
/// spans and never record it as a separate clock-advancing event, so any
/// timeline advance outside a recorded atomic op is compute by
/// construction.
void normalize_timeline(RankTimeline& tl) {
  std::stable_sort(tl.ops.begin(), tl.ops.end(),
                   [](const CritOp& a, const CritOp& b) {
                     if (a.begin_s != b.begin_s) return a.begin_s < b.begin_s;
                     return a.end_s < b.end_s;
                   });
  std::vector<CritOp> tiled;
  tiled.reserve(tl.ops.size() * 2 + 2);
  double cursor = 0.0;
  for (CritOp& op : tl.ops) {
    if (op.begin_s > cursor) {
      CritOp gap;
      gap.kind = CritOp::Kind::kCompute;
      gap.begin_s = cursor;
      gap.end_s = op.begin_s;
      tiled.push_back(std::move(gap));
    }
    cursor = std::max(cursor, op.end_s);
    tiled.push_back(std::move(op));
  }
  if (tl.end_s > cursor) {
    CritOp gap;
    gap.kind = CritOp::Kind::kCompute;
    gap.begin_s = cursor;
    gap.end_s = tl.end_s;
    tiled.push_back(std::move(gap));
  }
  tl.ops = std::move(tiled);
}

}  // namespace

CritGraph CritGraph::from_trace(const Tracer& tracer,
                                const std::vector<mp::ClockSnapshot>& clocks) {
  if (static_cast<int>(clocks.size()) != tracer.nranks()) {
    throw std::invalid_argument("CritGraph: clocks/tracer rank mismatch");
  }
  std::vector<RankTimeline> ranks(clocks.size());
  for (int r = 0; r < tracer.nranks(); ++r) {
    const auto& events = tracer.events(r);
    // The bench harness resets the clock after materialization; events
    // recorded before the (last) reset marker live in the pre-reset
    // coordinate system and are not part of the measured run.  Track
    // order is execution order, so an index cut is exact.
    std::size_t start = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == TraceEvent::Kind::kInstant &&
          events[i].name == span_names::kClockReset) {
        start = i + 1;
      }
    }
    RankTimeline& tl = ranks[static_cast<std::size_t>(r)];
    tl.end_s = clocks[static_cast<std::size_t>(r)].total();
    for (std::size_t i = start; i < events.size(); ++i) {
      const TraceEvent& ev = events[i];
      if (ev.kind != TraceEvent::Kind::kComplete) continue;
      CritOp op;
      op.begin_s = ev.begin_s;
      op.end_s = ev.end_s;
      op.name = ev.name;
      if (ev.comm != kNoArg && ev.site != kNoArg) {
        op.kind = CritOp::Kind::kCollective;
        op.comm = ev.comm;
        op.seq = ev.seq;
      } else if (ev.cat == "comm" && span_names::is_p2p(ev.name)) {
        op.kind = ev.name == span_names::kSend ? CritOp::Kind::kSend
                                               : CritOp::Kind::kRecv;
        op.peer = ev.peer;
        op.seq = ev.seq;
      } else if (span_names::is_io_atomic(ev.name)) {
        op.kind = CritOp::Kind::kIo;
      } else {
        continue;  // phase span: its clock time is covered by atomic ops
      }
      tl.ops.push_back(std::move(op));
    }
  }
  return from_timelines(std::move(ranks));
}

CritGraph CritGraph::from_timelines(std::vector<RankTimeline> ranks) {
  CritGraph g;
  g.ranks_ = std::move(ranks);
  for (auto& tl : g.ranks_) normalize_timeline(tl);
  g.index_graph();
  return g;
}

void CritGraph::index_graph() {
  groups_.clear();
  sends_.clear();
  for (int r = 0; r < nranks(); ++r) {
    auto& ops = ranks_[static_cast<std::size_t>(r)].ops;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const CritOp& op = ops[i];
      if (op.kind == CritOp::Kind::kCollective && op.comm != kNoArg) {
        groups_[{op.comm, op.seq}].members.emplace_back(r, i);
      } else if (op.kind == CritOp::Kind::kSend) {
        sends_[{static_cast<std::uint64_t>(r), op.seq}] = {r, i};
      }
    }
  }
  for (auto& [key, group] : groups_) {
    group.t_max = 0.0;
    group.cause = group.members.front().first;
    for (const auto& [r, i] : group.members) {
      const double publish =
          ranks_[static_cast<std::size_t>(r)].ops[i].begin_s;
      if (publish > group.t_max) {
        group.t_max = publish;
        group.cause = r;
      }
    }
    // Settle cost: identical across members (everyone waits to t_max and
    // charges the same formula), so derive it once from any member's end.
    for (const auto& [r, i] : group.members) {
      CritOp& op = ranks_[static_cast<std::size_t>(r)].ops[i];
      op.cost_s = std::max(0.0, op.end_s - group.t_max);
    }
  }
  // Receive cost: tau past the matched message's arrival (the send span's
  // end on the sender's timeline).  Without a match the whole span counts
  // as comm — conservative, and unreachable for runs traced end to end.
  for (int r = 0; r < nranks(); ++r) {
    auto& ops = ranks_[static_cast<std::size_t>(r)].ops;
    for (CritOp& op : ops) {
      if (op.kind == CritOp::Kind::kSend) {
        op.cost_s = op.end_s - op.begin_s;
      } else if (op.kind == CritOp::Kind::kRecv) {
        const CritOp* send = send_of(op.peer, op.seq);
        const double arrival = send ? send->end_s : op.begin_s;
        op.cost_s =
            std::max(0.0, op.end_s - std::max(op.begin_s, arrival));
      }
    }
  }
}

const CritGraph::CollectiveGroup* CritGraph::group_of(const CritOp& op) const {
  if (op.comm == kNoArg) return nullptr;
  const auto it = groups_.find({op.comm, op.seq});
  return it == groups_.end() ? nullptr : &it->second;
}

const CritOp* CritGraph::send_of(std::uint64_t sender, std::uint64_t seq,
                                 int* send_rank) const {
  const auto it = sends_.find({sender, seq});
  if (it == sends_.end()) return nullptr;
  const auto [r, i] = it->second;
  if (send_rank) *send_rank = r;
  return &ranks_[static_cast<std::size_t>(r)].ops[i];
}

double CritGraph::parallel_time_s() const {
  double t = 0.0;
  for (const auto& tl : ranks_) t = std::max(t, tl.end_s);
  return t;
}

double CritGraph::rank_busy_s(int rank) const {
  double busy = 0.0;
  for (const auto& op : ranks_[static_cast<std::size_t>(rank)].ops) {
    if (op.kind == CritOp::Kind::kCompute || op.kind == CritOp::Kind::kIo) {
      busy += op.end_s - op.begin_s;
    }
  }
  return busy;
}

std::vector<CritSegment> CritGraph::critical_path() const {
  std::vector<CritSegment> out;
  if (ranks_.empty()) return out;

  int r = 0;
  for (int i = 1; i < nranks(); ++i) {
    if (ranks_[static_cast<std::size_t>(i)].end_s >
        ranks_[static_cast<std::size_t>(r)].end_s) {
      r = i;
    }
  }
  double t = ranks_[static_cast<std::size_t>(r)].end_s;

  const auto emit = [&out](int rank, double t0, double t1, CritBucket b,
                           const std::string& op) {
    if (t1 > t0) out.push_back({rank, t0, t1, b, op});
  };

  // Per-rank backward cursors.  Global time only decreases, so an op
  // skipped as "future" on some rank can never be needed again.
  std::vector<std::size_t> cursor(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    cursor[i] = ranks_[i].ops.size();
  }

  while (t > 0.0) {
    const auto ur = static_cast<std::size_t>(r);
    const auto& ops = ranks_[ur].ops;
    std::size_t& c = cursor[ur];
    while (c > 0 && ops[c - 1].begin_s >= t) --c;
    if (c == 0) {
      // Nothing recorded before t on this rank: leading compute.
      emit(r, 0.0, t, CritBucket::kCompute, "");
      break;
    }
    const CritOp& op = ops[c - 1];
    if (op.end_s < t) {
      // Hole between ops (possible only in hand-built graphs; real
      // timelines are tiled by normalize_timeline): pure compute.
      emit(r, op.end_s, t, CritBucket::kCompute, "");
      t = op.end_s;
      continue;
    }
    // We are inside `op`, entering from its right edge (t == op.end_s up
    // to float noise; jumps always land on op boundaries).
    --c;
    switch (op.kind) {
      case CritOp::Kind::kCompute:
        emit(r, op.begin_s, t, CritBucket::kCompute, op.name);
        t = op.begin_s;
        break;
      case CritOp::Kind::kIo:
        emit(r, op.begin_s, t, CritBucket::kIo, op.name);
        t = op.begin_s;
        break;
      case CritOp::Kind::kSend:
        emit(r, op.begin_s, t, CritBucket::kComm, op.name);
        t = op.begin_s;
        break;
      case CritOp::Kind::kRecv: {
        int sender = r;
        const CritOp* send = send_of(op.peer, op.seq, &sender);
        const double arrival = send ? send->end_s : op.begin_s;
        const double comm_start = std::max(op.begin_s, arrival);
        emit(r, comm_start, t, CritBucket::kComm, op.name);
        if (send && arrival > op.begin_s) {
          // This rank sat waiting for the message: the path continues on
          // the sender at the moment the message departed/arrived.
          t = arrival;
          r = sender;
        } else {
          t = op.begin_s;
        }
        break;
      }
      case CritOp::Kind::kCollective: {
        const CollectiveGroup* g = group_of(op);
        if (!g) {
          emit(r, op.begin_s, t, CritBucket::kComm, op.name);
          t = op.begin_s;
          break;
        }
        // (t_max, end] is the settle cost every member pays; the wait up
        // to t_max is caused by the member that published last, so the
        // path continues there (possibly this very rank).
        emit(r, g->t_max, t, CritBucket::kComm, op.name);
        t = g->t_max;
        r = g->cause;
        break;
      }
    }
  }
  return out;
}

double CritGraph::replay(const ReplayScales& scales) const {
  const std::size_t p = ranks_.size();
  std::vector<double> now(p, 0.0);
  std::vector<std::size_t> idx(p, 0);
  std::map<Key, std::map<int, double>> arrivals;
  std::map<Key, double> coll_done;
  std::map<Key, double> send_done;

  std::size_t remaining = 0;
  for (const auto& tl : ranks_) remaining += tl.ops.size();

  const auto cscale = [&](std::size_t r) {
    return scales.compute.empty() ? 1.0 : scales.compute[r];
  };

  while (remaining > 0) {
    bool progress = false;
    for (std::size_t r = 0; r < p; ++r) {
      const auto& ops = ranks_[r].ops;
      while (idx[r] < ops.size()) {
        const CritOp& op = ops[idx[r]];
        const double dur = op.end_s - op.begin_s;
        bool blocked = false;
        switch (op.kind) {
          case CritOp::Kind::kCompute:
            now[r] += dur * cscale(r);
            break;
          case CritOp::Kind::kIo:
            now[r] += dur * scales.io * cscale(r);
            break;
          case CritOp::Kind::kSend:
            now[r] += op.cost_s * scales.comm;
            send_done[{static_cast<std::uint64_t>(r), op.seq}] = now[r];
            break;
          case CritOp::Kind::kRecv: {
            const Key key{op.peer, op.seq};
            const auto done = send_done.find(key);
            if (done == send_done.end()) {
              if (sends_.count(key) != 0) {
                blocked = true;  // the matching send has not replayed yet
                break;
              }
              now[r] += op.cost_s * scales.comm;  // unmatched: cost only
              break;
            }
            now[r] = std::max(now[r], done->second) +
                     op.cost_s * scales.comm;
            break;
          }
          case CritOp::Kind::kCollective: {
            const CollectiveGroup* g = group_of(op);
            if (!g || g->members.size() < 2) {
              now[r] += op.cost_s * scales.comm;
              break;
            }
            const Key key{op.comm, op.seq};
            auto& arr = arrivals[key];
            arr.emplace(static_cast<int>(r), now[r]);
            const auto done = coll_done.find(key);
            if (done != coll_done.end()) {
              now[r] = done->second;
              break;
            }
            if (arr.size() == g->members.size()) {
              double t_max = 0.0;
              for (const auto& [rank, at] : arr) t_max = std::max(t_max, at);
              const double finish = t_max + op.cost_s * scales.comm;
              coll_done.emplace(key, finish);
              now[r] = finish;
              break;
            }
            blocked = true;  // wait for the remaining members
            break;
          }
        }
        if (blocked) break;
        ++idx[r];
        --remaining;
        progress = true;
      }
    }
    if (!progress) {
      // Inconsistent hand-built graph (a recv before its send in program
      // order, or a collective with an absent member): refuse to spin.
      throw std::logic_error("CritGraph::replay: dependency deadlock");
    }
  }

  double makespan = 0.0;
  for (const double t : now) makespan = std::max(makespan, t);
  return makespan;
}

}  // namespace pdc::obs
