#pragma once

// Cross-rank dependency DAG and critical-path machinery.
//
// The modeled run already records everything needed to reconstruct its
// dependency structure offline: every clock-advancing operation is a trace
// span, collectives carry a (comm, seq) identity that is equal across the
// member ranks of one collective instance, and p2p messages carry a
// sender-channel sequence number matching each recv span to its send span.
// From one Tracer this module derives, per rank, an ordered timeline of
// atomic ops —
//
//   kCompute     a gap between recorded clock-advancing events (the cost
//                hooks charge compute inside phase spans, never idle/comm)
//   kIo          a disk event that stalled the rank (sync charge, async
//                settle stall, or retry backoff)
//   kSend        p2p send: pure comm cost, defines the message's arrival
//   kRecv        p2p recv: idle until the matched send completes + tau
//   kCollective  one member's view of a collective: idle until the last
//                member publishes (t_max), then the settle cost
//
// — and offers the two consumers obs/profile.hpp is built from:
//
//   critical_path(): the exact backward walk from the slowest rank's final
//   timeline position.  Time-continuous by construction: inside a
//   collective the walk jumps to the rank that published last (the member
//   that made everyone wait), inside a recv it jumps to the sender, and
//   between events it attributes pure compute — so the returned segments
//   partition [0, parallel_time_s] exactly and their bucket sums close to
//   the makespan within float summation error.
//
//   replay(): deterministic re-execution of the fixed DAG under
//   counterfactual cost scales (comm x0 = zero-cost network with the same
//   synchronization structure, io x0 = infinitely fast disks, per-rank
//   compute scales = redistributed load).  With all scales at 1 the replay
//   reproduces every rank's recorded finish time — the self-check
//   obs_profile_test pins — so headroom ratios are exact, not estimates.
//
// The graph can also be built by hand (tests construct a known 3-rank DAG
// and assert the walk and the replay against worked-out answers).

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "mp/clock.hpp"
#include "obs/trace.hpp"

namespace pdc::obs {

/// One atomic operation on a rank's modeled timeline.
struct CritOp {
  enum class Kind : std::uint8_t { kCompute, kIo, kSend, kRecv, kCollective };

  Kind kind = Kind::kCompute;
  double begin_s = 0.0;
  double end_s = 0.0;
  /// Comm cost of the op (collective: settle cost shared by all members;
  /// send: the whole span; recv: the receive overhead tau).  Zero for
  /// compute/io ops.
  double cost_s = 0.0;
  /// Collective identity (kCollective only): communicator id + sequence.
  std::uint64_t comm = kNoArg;
  std::uint64_t seq = kNoArg;   ///< collective seq / sender-channel seq
  std::uint64_t peer = kNoArg;  ///< world rank of the other endpoint (p2p)
  std::string name;             ///< span name (rollup/report key)
};

/// One rank's ordered, disjoint op list.  `end_s` is the rank's final
/// timeline position (>= the last op's end; the remainder is compute).
struct RankTimeline {
  std::vector<CritOp> ops;
  double end_s = 0.0;
};

/// Attribution buckets for one critical-path segment.
enum class CritBucket : std::uint8_t { kCompute, kComm, kIo, kIdle };

/// One maximal segment of the critical path on one rank.
struct CritSegment {
  int rank = 0;
  double begin_s = 0.0;
  double end_s = 0.0;
  CritBucket bucket = CritBucket::kCompute;
  /// Name of the op the segment lies in ("" for a pure-compute gap).
  std::string op;
};

/// Counterfactual cost scales for replay().  Defaults reproduce the run.
struct ReplayScales {
  double comm = 1.0;
  double io = 1.0;
  /// Per-rank local-work multipliers (empty = all 1), applied to compute
  /// and io ops alike.  The perfect-balance counterfactual sets rank r's
  /// entry to mean_busy / busy_r.
  std::vector<double> compute;
};

class CritGraph {
 public:
  /// Builds the per-rank op timelines from a recorded trace plus the final
  /// per-rank clocks.  Events before the last "clock-reset" instant on a
  /// track are discarded (the bench harness restarts the clock after data
  /// materialization, as the paper's protocol requires).
  static CritGraph from_trace(const Tracer& tracer,
                              const std::vector<mp::ClockSnapshot>& clocks);

  /// Builds from hand-made timelines (tests).  Collective groups and p2p
  /// matches are derived from the ops' identity fields.
  static CritGraph from_timelines(std::vector<RankTimeline> ranks);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  const std::vector<RankTimeline>& ranks() const { return ranks_; }

  /// Slowest rank's final timeline position.
  double parallel_time_s() const;

  /// The exact critical path, ordered backwards in time (first element
  /// ends at parallel_time_s, last begins at 0).  Segment lengths sum to
  /// parallel_time_s.
  std::vector<CritSegment> critical_path() const;

  /// Re-executes the dependency DAG under counterfactual cost scales and
  /// returns the resulting makespan.  Scales of 1 reproduce
  /// parallel_time_s exactly.
  double replay(const ReplayScales& scales) const;

  /// Sum of compute-op and io-op time on rank r (the "busy" time the
  /// perfect-balance counterfactual redistributes).
  double rank_busy_s(int rank) const;

 private:
  using Key = std::pair<std::uint64_t, std::uint64_t>;

  struct CollectiveGroup {
    std::vector<std::pair<int, std::size_t>> members;  ///< (rank, op index)
    double t_max = 0.0;  ///< latest member publish time
    int cause = 0;       ///< rank that published last (tie: lowest rank)
  };

  void index_graph();

  std::vector<RankTimeline> ranks_;
  /// Collective instances by (communicator id, collective seq).
  std::map<Key, CollectiveGroup> groups_;
  /// Send ops by (sender world rank, channel seq).
  std::map<Key, std::pair<int, std::size_t>> sends_;

  const CollectiveGroup* group_of(const CritOp& op) const;
  const CritOp* send_of(std::uint64_t sender, std::uint64_t seq,
                        int* send_rank = nullptr) const;
};

}  // namespace pdc::obs
