#pragma once

// Closed-loop seeded load generator + the `pdc.serve_report.v1` artifact.
//
// The generator keeps a fixed window of outstanding batches against a
// Server (closed loop: a new request is admitted only when an old one
// completes, so offered load adapts to service rate instead of queueing
// unboundedly), synthesizes every record deterministically from the
// Agrawal stream (seed + running index — two runs with the same config
// score identical records), optionally republishes the model every
// `swap_every` completions to exercise hot-swap under load, and folds the
// exact per-batch latencies plus the server's own counters into a
// structured report.
//
// Concurrency: the generator itself is single-threaded and owns no shared
// mutable state -- all cross-thread traffic goes through Server's
// annotated capability surface (submit()/hot_swap()/stats()) and the
// std::future handshake, so there is nothing here for the thread-safety
// analysis to guard.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/compiled_tree.hpp"
#include "serve/server.hpp"

namespace pdc::serve {

struct LoadGenConfig {
  std::size_t requests = 64;       ///< total batches to push
  std::size_t batch_records = 512; ///< records per batch
  std::size_t window = 8;          ///< outstanding batches (closed loop)
  std::uint64_t seed = 1;          ///< Agrawal stream seed
  int function = 2;                ///< Agrawal classification function
  /// Republish the model after every N completed requests (0 = never);
  /// each republish bumps the served version.
  std::size_t swap_every = 0;
};

/// Everything `pdc.serve_report.v1` carries; to_json() is the artifact.
struct ServeReport {
  LoadGenConfig config;
  int replicas = 0;

  std::size_t model_nodes = 0;
  std::int32_t model_depth = 0;
  std::size_t model_leaves = 0;

  std::uint64_t total_requests = 0;
  std::uint64_t total_records = 0;
  double wall_s = 0.0;
  double records_per_s = 0.0;
  std::uint64_t swaps = 0;
  std::uint64_t queue_highwater = 0;

  obs::HistogramSummary latency_us;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  std::array<std::uint64_t, kLatencyBuckets> latency_log2_us{};

  std::vector<ReplicaStats> replica_stats;

  /// The `pdc.serve_report.v1` JSON document.
  std::string to_json() const;
};

/// Drives `cfg.requests` batches through `server` and reports.  `model` is
/// the compiled model the server was built with (echoed into the report
/// and republished on swap_every).
ServeReport run_loadgen(Server& server, const CompiledTree& model,
                        const LoadGenConfig& cfg);

}  // namespace pdc::serve
