#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <utility>

#include "data/agrawal.hpp"
#include "obs/json.hpp"

namespace pdc::serve {

namespace {

double wall_seconds() {
  using WallClock = std::chrono::steady_clock;  // pdc-lint: allow(PDC001) -- load-generator throughput is wall time, outside the modeled timeline
  return std::chrono::duration<double>(WallClock::now().time_since_epoch())
      .count();
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

obs::Json num(double v) { return obs::Json::make_number(v); }
obs::Json unum(std::uint64_t v) {
  return obs::Json::make_number(static_cast<double>(v));
}

}  // namespace

ServeReport run_loadgen(Server& server, const CompiledTree& model,
                        const LoadGenConfig& cfg) {
  data::AgrawalGenerator gen({cfg.function, cfg.seed, 0.0, 0.0});

  ServeReport rep;
  rep.config = cfg;
  rep.replicas = server.replicas();
  rep.model_nodes = model.node_count();
  rep.model_depth = model.depth();
  rep.model_leaves = model.leaf_count();

  std::vector<double> latencies;
  // pdc: incore(one latency sample per request; bounded by cfg.requests, not by the record stream)
  latencies.reserve(cfg.requests);

  std::deque<std::future<BatchResult>> outstanding;
  std::uint64_t next_record = 0;
  std::uint64_t completed = 0;
  const std::size_t window = std::max<std::size_t>(1, cfg.window);

  const auto drain_one = [&] {
    BatchResult res = outstanding.front().get();
    outstanding.pop_front();
    latencies.push_back(res.latency_us);
    ++completed;
    if (cfg.swap_every != 0 && completed % cfg.swap_every == 0) {
      server.hot_swap(model);  // republish: same behaviour, new version
    }
  };

  // Request payloads are pre-generated into a pool before the clock
  // starts: a load generator that synthesizes records on the submit path
  // becomes the bottleneck long before a multi-replica server does, and
  // the throughput figure would measure the generator, not the server.
  constexpr std::size_t kPoolSize = 32;
  std::vector<RecordBlock> pool;
  // pdc: incore(bounded request-payload pool: at most 32 batches, reused cyclically)
  pool.reserve(std::min<std::size_t>(kPoolSize, cfg.requests));
  for (std::size_t i = 0; i < pool.capacity(); ++i) {
    const auto records =
        gen.make_range(next_record, next_record + cfg.batch_records);
    next_record += cfg.batch_records;
    pool.push_back(RecordBlock::from_records(records));
  }

  const double begin_s = wall_seconds();
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    outstanding.push_back(server.submit(pool[i % pool.size()]));
    while (outstanding.size() >= window) drain_one();
  }
  while (!outstanding.empty()) drain_one();
  rep.wall_s = wall_seconds() - begin_s;

  const ServerStats stats = server.stats();
  rep.total_requests = stats.requests;
  rep.total_records = stats.records;
  rep.records_per_s =
      rep.wall_s > 0.0 ? static_cast<double>(rep.total_records) / rep.wall_s
                       : 0.0;
  rep.swaps = stats.swaps;
  rep.queue_highwater = stats.queue_highwater;
  rep.latency_us = stats.latency_us;
  rep.latency_log2_us = stats.latency_log2_us;
  rep.replica_stats = stats.replicas;

  std::sort(latencies.begin(), latencies.end());
  rep.p50_us = percentile(latencies, 0.50);
  rep.p90_us = percentile(latencies, 0.90);
  rep.p99_us = percentile(latencies, 0.99);
  return rep;
}

std::string ServeReport::to_json() const {
  obs::Json doc = obs::Json::make_object();
  doc.set("schema", obs::Json::make_string("pdc.serve_report.v1"));

  obs::Json jcfg = obs::Json::make_object();
  jcfg.set("replicas", num(replicas));
  jcfg.set("batch_records", unum(config.batch_records));
  jcfg.set("requests", unum(config.requests));
  jcfg.set("window", unum(config.window));
  jcfg.set("seed", unum(config.seed));
  jcfg.set("function", num(config.function));
  jcfg.set("swap_every", unum(config.swap_every));
  doc.set("config", std::move(jcfg));

  obs::Json jmodel = obs::Json::make_object();
  jmodel.set("nodes", unum(model_nodes));
  jmodel.set("depth", num(model_depth));
  jmodel.set("leaves", unum(model_leaves));
  doc.set("model", std::move(jmodel));

  obs::Json jtot = obs::Json::make_object();
  jtot.set("requests", unum(total_requests));
  jtot.set("records", unum(total_records));
  jtot.set("wall_s", num(wall_s));
  jtot.set("records_per_s", num(records_per_s));
  jtot.set("swaps", unum(swaps));
  jtot.set("queue_highwater", unum(queue_highwater));
  doc.set("totals", std::move(jtot));

  obs::Json jlat = obs::Json::make_object();
  jlat.set("count", unum(latency_us.count));
  jlat.set("mean_us", num(latency_us.mean()));
  jlat.set("min_us", num(latency_us.count ? latency_us.min : 0.0));
  jlat.set("max_us", num(latency_us.count ? latency_us.max : 0.0));
  jlat.set("p50_us", num(p50_us));
  jlat.set("p90_us", num(p90_us));
  jlat.set("p99_us", num(p99_us));
  obs::Json jbuckets = obs::Json::make_array();
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    obs::Json jb = obs::Json::make_object();
    // The final bucket is unbounded; -1 marks "no upper edge".
    const double le =
        b + 1 < kLatencyBuckets ? std::ldexp(1.0, static_cast<int>(b)) : -1.0;
    jb.set("le_us", num(le));
    jb.set("count", unum(latency_log2_us[b]));
    jbuckets.push_back(std::move(jb));
  }
  jlat.set("buckets", std::move(jbuckets));
  doc.set("latency_us", std::move(jlat));

  obs::Json jreps = obs::Json::make_array();
  for (const ReplicaStats& rs : replica_stats) {
    obs::Json jr = obs::Json::make_object();
    jr.set("replica", num(rs.replica));
    jr.set("batches", unum(rs.batches));
    jr.set("records", unum(rs.records));
    jr.set("min_version", unum(rs.min_version));
    jr.set("max_version", unum(rs.max_version));
    jr.set("swaps_observed", unum(rs.swaps_observed));
    jr.set("version_monotonic", obs::Json::make_bool(rs.version_monotonic));
    jreps.push_back(std::move(jr));
  }
  doc.set("replicas", std::move(jreps));
  return doc.dump();
}

}  // namespace pdc::serve
