#pragma once

// Struct-of-arrays record block: the unit of work the serving layer moves
// around.  The training side streams arrays-of-structs (data::Record) off
// disk because that is how the paper's out-of-core passes consume them;
// the serving side wants the transpose — one contiguous column per
// attribute — so the batch evaluator reads each attribute with unit
// stride and the compiler can keep several descents in flight at once.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "data/record.hpp"

namespace pdc::serve {

class RecordBlock {
 public:
  RecordBlock() = default;

  std::size_t size() const { return num_[0].size(); }
  bool empty() const { return size() == 0; }

  void reserve(std::size_t n) {
    for (auto& col : num_) col.reserve(n);
    for (auto& col : cat_) col.reserve(n);
    label_.reserve(n);
  }

  void push_back(const data::Record& r) {
    for (int a = 0; a < data::kNumNumeric; ++a) {
      num_[static_cast<std::size_t>(a)].push_back(
          r.num[static_cast<std::size_t>(a)]);
    }
    for (int a = 0; a < data::kNumCategorical; ++a) {
      cat_[static_cast<std::size_t>(a)].push_back(
          r.cat[static_cast<std::size_t>(a)]);
    }
    label_.push_back(r.label);
  }

  static RecordBlock from_records(std::span<const data::Record> records) {
    RecordBlock out;
    out.reserve(records.size());
    for (const auto& r : records) out.push_back(r);
    return out;
  }

  /// Reassembles row `i` (oracle comparisons, not the hot path).
  data::Record record(std::size_t i) const {
    data::Record r{};
    for (int a = 0; a < data::kNumNumeric; ++a) {
      r.num[static_cast<std::size_t>(a)] = num_[static_cast<std::size_t>(a)][i];
    }
    for (int a = 0; a < data::kNumCategorical; ++a) {
      r.cat[static_cast<std::size_t>(a)] = cat_[static_cast<std::size_t>(a)][i];
    }
    r.label = label_[i];
    return r;
  }

  std::span<const float> num(int attr) const {
    return num_[static_cast<std::size_t>(attr)];
  }
  std::span<const std::int8_t> cat(int attr) const {
    return cat_[static_cast<std::size_t>(attr)];
  }
  std::span<const std::int8_t> labels() const { return label_; }

 private:
  std::array<std::vector<float>, data::kNumNumeric> num_;
  std::array<std::vector<std::int8_t>, data::kNumCategorical> cat_;
  std::vector<std::int8_t> label_;
};

}  // namespace pdc::serve
