#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/span_names.hpp"

namespace pdc::serve {

namespace {

/// The one place serving reads the wall: latency of a real server is wall
/// time by nature, and this layer sits outside the modeled SPMD timeline.
double wall_seconds() {
  using WallClock = std::chrono::steady_clock;  // pdc-lint: allow(PDC001) -- serving latency is wall time, outside the modeled timeline
  return std::chrono::duration<double>(WallClock::now().time_since_epoch())
      .count();
}

std::size_t latency_bucket(double us) {
  std::size_t b = 0;
  double le = 1.0;
  while (b + 1 < kLatencyBuckets && us > le) {
    le *= 2.0;
    ++b;
  }
  return b;
}

}  // namespace

Server::Server(CompiledTree model, ServerConfig cfg) : cfg_(cfg) {
  if (cfg_.replicas < 1) {
    throw std::runtime_error("Server: replicas must be >= 1");
  }
  if (cfg_.queue_capacity < 1) {
    throw std::runtime_error("Server: queue_capacity must be >= 1");
  }
  if (cfg_.tracer && cfg_.tracer->nranks() < cfg_.replicas) {
    throw std::runtime_error("Server: tracer has fewer tracks than replicas");
  }
  auto first = std::make_shared<const VersionedModel>(
      VersionedModel{std::move(model), 0});
  replicas_.reserve(static_cast<std::size_t>(cfg_.replicas));
  for (int r = 0; r < cfg_.replicas; ++r) {
    auto rep = std::make_unique<Replica>();
    rep->model = first;
    replicas_.push_back(std::move(rep));
  }
  clocks_.resize(replicas_.size());
  last_version_.assign(replicas_.size(), 0);
  replica_started_.assign(replicas_.size(), false);
  stats_.replicas.resize(replicas_.size());
  for (std::size_t r = 0; r < replicas_.size(); ++r) {
    stats_.replicas[r].replica = static_cast<int>(r);
  }
  workers_.reserve(replicas_.size());
  for (int r = 0; r < cfg_.replicas; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
}

Server::~Server() { shutdown(); }

std::future<BatchResult> Server::submit(RecordBlock block) {
  Request req;
  req.block = std::move(block);
  req.enqueue_wall_s = wall_seconds();
  std::future<BatchResult> fut = req.promise.get_future();
  {
    LockGuard lk(queue_mu_);
    while (!stop_ && queue_.size() >= cfg_.queue_capacity) {
      queue_space_.wait(lk);
    }
    if (stop_) {
      throw std::runtime_error("Server: submit after shutdown");
    }
    queue_.push_back(std::move(req));
    const std::uint64_t depth = queue_.size();
    {
      LockGuard slk(stats_mu_);
      stats_.queue_highwater = std::max(stats_.queue_highwater, depth);
    }
  }
  queue_nonempty_.notify_one();
  return fut;
}

std::uint64_t Server::hot_swap(CompiledTree model) {
  LockGuard swap_lk(swap_mu_);
  const std::uint64_t v = ++published_version_;
  auto next = std::make_shared<const VersionedModel>(
      VersionedModel{std::move(model), v});
  for (auto& rep : replicas_) {
    LockGuard lk(rep->model_mu);
    rep->model = next;
  }
  {
    LockGuard slk(stats_mu_);
    ++stats_.swaps;
  }
  return v;
}

std::uint64_t Server::version() const {
  LockGuard lk(swap_mu_);
  return published_version_;
}

void Server::shutdown() {
  {
    LockGuard lk(queue_mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  queue_nonempty_.notify_all();
  queue_space_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

ServerStats Server::stats() const {
  LockGuard lk(stats_mu_);
  return stats_;
}

void Server::worker_loop(int r) {
  const std::size_t ri = static_cast<std::size_t>(r);
  Replica& rep = *replicas_[ri];
  obs::RankTracer tracer;
  if (cfg_.tracer) {
    tracer = cfg_.tracer->rank(r, &clocks_[ri]);
  }
  for (;;) {
    Request req;
    {
      LockGuard lk(queue_mu_);
      while (!stop_ && queue_.empty()) {
        queue_nonempty_.wait(lk);
      }
      if (queue_.empty()) return;  // stop_ set and fully drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_space_.notify_one();

    std::shared_ptr<const VersionedModel> m;
    {
      LockGuard lk(rep.model_mu);
      m = rep.model;
    }

    const double begin_s = wall_seconds();
    const double begin_modeled = clocks_[ri].total();
    BatchResult res;
    res.labels.resize(req.block.size());
    m->tree.predict_block(req.block, res.labels);
    res.model_version = m->version;
    res.replica = r;
    const double end_s = wall_seconds();
    res.latency_us = (end_s - req.enqueue_wall_s) * 1e6;

    // The replica's modeled clock advances by the measured service time,
    // so the optional trace shows real batch durations on its track.
    clocks_[ri].add_compute(std::max(0.0, end_s - begin_s));

    bool swapped = false;
    {
      LockGuard lk(stats_mu_);
      ReplicaStats& rs = stats_.replicas[ri];
      if (!replica_started_[ri]) {
        replica_started_[ri] = true;
        rs.min_version = rs.max_version = res.model_version;
      } else {
        if (res.model_version < last_version_[ri]) {
          rs.version_monotonic = false;
        }
        if (res.model_version != last_version_[ri]) {
          ++rs.swaps_observed;
          swapped = true;
        }
        rs.min_version = std::min(rs.min_version, res.model_version);
        rs.max_version = std::max(rs.max_version, res.model_version);
      }
      last_version_[ri] = res.model_version;
      ++rs.batches;
      rs.records += req.block.size();
      ++stats_.requests;
      stats_.records += req.block.size();
      stats_.latency_us.observe(res.latency_us);
      ++stats_.latency_log2_us[latency_bucket(res.latency_us)];
    }

    if (tracer.enabled()) {
      if (swapped) {
        tracer.instant(obs::span_names::kServeSwap, "serve");
      }
      tracer.complete(obs::span_names::kServeBatch, "serve", begin_modeled,
                      clocks_[ri].total(), obs::kNoArg, req.block.size());
      tracer.count("serve.batches");
      tracer.count("serve.records", req.block.size());
      tracer.observe("serve.batch_latency_us", res.latency_us);
    }

    req.promise.set_value(std::move(res));
  }
}

}  // namespace pdc::serve
