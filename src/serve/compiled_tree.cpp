#include "serve/compiled_tree.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/wire.hpp"

namespace pdc::serve {

namespace {

inline constexpr std::uint32_t kMagic = kCompiledMagic;
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kNodeBytes = 16;

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int b = 0; b < 4; ++b) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

[[noreturn]] void reject(const std::string& why) {
  throw WireError("CompiledTree: " + why);
}

}  // namespace

CompiledTree CompiledTree::compile(const clouds::DecisionTree& tree) {
  // Pass 1: breadth-first order over the LIVE nodes (collapse can leave
  // orphans in the trainer's arena; they are not compiled).  Enqueuing
  // left and right together is what makes sibling slots adjacent, which
  // the branchless step (next = first_child + !left) relies on.
  std::vector<std::int32_t> order;
  // pdc: incore(model compilation staging: one index per live tree node, bounded by the trained model's size)
  order.reserve(tree.node_count());
  order.push_back(tree.root());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const clouds::TreeNode& n = tree.node(order[i]);
    if (!n.leaf) {
      order.push_back(n.left);
      order.push_back(n.right);
    }
  }
  std::vector<std::uint32_t> flat_of(tree.node_count(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    flat_of[static_cast<std::size_t>(order[i])] =
        static_cast<std::uint32_t>(i);
  }

  // Pass 2: emit 16-byte nodes, canonically zeroed (a numeric node carries
  // no mask, a categorical node no threshold, a leaf neither) so the blob
  // bytes are a pure function of the model's behaviour.
  CompiledTree out;
  out.nodes_.resize(order.size());
  std::vector<std::int32_t> dep(order.size(), 0);
  out.leaves_ = 0;
  out.depth_ = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const clouds::TreeNode& src = tree.node(order[i]);
    FlatNode& dst = out.nodes_[i];
    if (src.leaf) {
      dst.meta = (static_cast<std::uint32_t>(
                      static_cast<std::uint8_t>(src.label))
                  << 1) |
                 1u;
      ++out.leaves_;
      out.depth_ = std::max(out.depth_, dep[i]);
    } else {
      const std::uint32_t fc =
          flat_of[static_cast<std::size_t>(src.left)];
      dst.meta = fc << 1;
      dst.kind = src.split.kind == clouds::Split::Kind::kCategorical ? 1 : 0;
      dst.attr = static_cast<std::uint16_t>(src.split.attr);
      if (dst.kind == 0) {
        dst.threshold = src.split.threshold;
      } else {
        dst.mask = src.split.subset;
      }
      dep[fc] = dep[fc + 1] = dep[i] + 1;
    }
  }
  out.build_dense();
  return out;
}

void CompiledTree::build_dense() {
  if (nodes_.size() >= (std::size_t{1} << 27)) {
    reject("node count out of range");
  }
  dense_.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const FlatNode& nd = nodes_[i];
    DenseNode& d = dense_[i];
    if (nd.is_leaf()) {
      d.meta2 = 1u | ((nd.meta >> 1) << 5);
      d.payload = 0;
    } else {
      d.meta2 = (static_cast<std::uint32_t>(nd.kind) << 1) |
                (static_cast<std::uint32_t>(nd.attr) << 2) |
                ((nd.meta >> 1) << 5);
      d.payload = nd.kind != 0 ? nd.mask
                               : std::bit_cast<std::uint32_t>(nd.threshold);
    }
  }
}

void CompiledTree::predict_block(const RecordBlock& block,
                                 std::span<std::int8_t> out) const {
  const std::size_t n = block.size();
  const float* numc[data::kNumNumeric];
  const std::int8_t* catc[data::kNumCategorical];
  for (int a = 0; a < data::kNumNumeric; ++a) {
    numc[a] = block.num(a).data();
  }
  for (int a = 0; a < data::kNumCategorical; ++a) {
    catc[a] = block.cat(a).data();
  }

  // Lane-compacted level-synchronous descent.  Each chunk keeps a dense
  // list of still-descending lanes; a lane whose current node is a leaf
  // writes its label and leaves the list, so the work per chunk is the sum
  // of actual descent depths rather than lanes x max depth.
  //
  // Three things keep the per-step cost near the machine floor:
  //  - The step is completely branch-free.  Every lane stores meta>>1 to
  //    out[row] unconditionally (garbage while internal, the true label on
  //    the leaf step — last write wins) and compaction is
  //    `kept += !is_leaf`, so a mispredict-prone retire branch never
  //    enters the pipeline and the node loads of all lanes overlap.
  //  - The chunk's attribute columns are staged once into a 32-byte-per-
  //    lane AoS buffer (floats + the three categorical bytes packed into
  //    one word), and the descent walks the packed 8-byte node mirror, so
  //    a step issues exactly four loads — packed lane state, one node
  //    word, one float, one categorical word — all but the node word
  //    L1-resident.
  //  - The next-level node index is known a full level early; prefetching
  //    it here means the lanes processed in between give the miss time to
  //    resolve, which is the payoff of level-synchronous order.
  //  - Labels land in a chunk-local buffer (not out[], whose char-typed
  //    stores would alias everything and fence the schedule) and the
  //    compaction double-buffers the lane state, so every load in the
  //    step is provably independent of every store and the compiler can
  //    software-pipeline the lanes.
  constexpr std::size_t kLanes = 256;
  struct LaneRow {
    float num[data::kNumNumeric];
    std::uint32_t cats;
    std::uint32_t pad_;
  };
  static_assert(sizeof(LaneRow) == 32);
  LaneRow rows[kLanes];
  // Lane state: chunk-local row in the high word, node index in the low.
  std::uint64_t state_a[kLanes];
  std::uint64_t state_b[kLanes];
  std::int8_t labels[kLanes];
  const char* node_bytes = reinterpret_cast<const char*>(dense_.data());  // pdc-lint: allow(PDC010) -- in-memory descent mirror, not wire bytes

  for (std::size_t base = 0; base < n; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, n - base);
    for (std::size_t l = 0; l < lanes; ++l) {
      for (int a = 0; a < data::kNumNumeric; ++a) {
        rows[l].num[a] = numc[a][base + l];
      }
      std::uint32_t cats = 0;
      for (int a = 0; a < data::kNumCategorical; ++a) {
        cats |= static_cast<std::uint32_t>(
                    static_cast<std::uint8_t>(catc[a][base + l]))
                << (8 * a);
      }
      rows[l].cats = cats;
      state_a[l] = static_cast<std::uint64_t>(l) << 32;  // node index 0
    }
    std::size_t active = lanes;
    std::uint64_t* cur = state_a;
    std::uint64_t* nxt = state_b;
    // depth_ + 1 levels: the leaf itself costs the final step.
    for (std::int32_t d = 0; d <= depth_ && active != 0; ++d) {
      std::size_t kept = 0;
      for (std::size_t s = 0; s < active; ++s) {
        const std::uint64_t st = cur[s];
        const std::uint32_t i = static_cast<std::uint32_t>(st);
        const std::uint32_t l = static_cast<std::uint32_t>(st >> 32);
        std::uint64_t w;
        std::memcpy(&w, node_bytes + std::size_t{i} * sizeof(DenseNode), 8);  // pdc-lint: allow(PDC010) -- packed node word load from the validated mirror
        const std::uint32_t m = static_cast<std::uint32_t>(w);
        const std::uint32_t payload = static_cast<std::uint32_t>(w >> 32);
        const std::uint32_t kind = (m >> 1) & 1u;
        const std::uint32_t attr = (m >> 2) & 7u;
        const std::size_t na = attr & (kind - 1u);
        const std::uint32_t ca = attr & (0u - kind);
        const std::uint32_t num_left = static_cast<std::uint32_t>(
            rows[l].num[na] <= std::bit_cast<float>(payload));
        const std::uint32_t cv = (rows[l].cats >> (ca << 3)) & 31u;
        const std::uint32_t cat_left = (payload >> cv) & 1u;
        const std::uint32_t left =
            (cat_left & kind) | (num_left & (kind ^ 1u));
        const std::uint32_t next = (m >> 5) + (left ^ 1u);
        __builtin_prefetch(node_bytes + std::size_t{next} * sizeof(DenseNode),
                           0, 3);
        labels[l] = static_cast<std::int8_t>(m >> 5);
        nxt[kept] = (static_cast<std::uint64_t>(l) << 32) | next;
        kept += static_cast<std::size_t>((m & 1u) ^ 1u);
      }
      active = kept;
      std::swap(cur, nxt);
    }
    std::memcpy(&out[base], labels, lanes);  // pdc-lint: allow(PDC010) -- chunk-local label buffer flush, not wire bytes
  }
}

double CompiledTree::accuracy(const RecordBlock& block) const {
  if (block.empty()) return 1.0;
  std::vector<std::int8_t> got(block.size());
  predict_block(block, got);
  const auto want = block.labels();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] == want[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(block.size());
}

std::int8_t CompiledTree::predict_checked(const data::Record& r,
                                          int* steps_out) const {
  std::uint32_t i = 0;
  int steps = 0;
  while (true) {
    if (i >= nodes_.size()) reject("descent left the node array");
    const FlatNode& n = nodes_[i];
    if (n.is_leaf()) break;
    if (steps >= depth_) reject("descent exceeded the compiled depth");
    const std::size_t na = n.kind ? 0u : n.attr;
    const std::size_t ca = n.kind ? n.attr : 0u;
    const bool num_left = r.num[na] <= n.threshold;
    const std::uint32_t cv = static_cast<std::uint8_t>(r.cat[ca]) & 31u;
    const bool cat_left = ((n.mask >> cv) & 1u) != 0;
    const bool left = n.kind ? cat_left : num_left;
    i = n.first_child() + static_cast<std::uint32_t>(!left);
    ++steps;
  }
  if (steps_out) *steps_out = steps;
  return static_cast<std::int8_t>(nodes_[i].meta >> 1);
}

std::vector<std::uint8_t> CompiledTree::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kNodeBytes * nodes_.size());
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_u64(out, nodes_.size());
  append_u32(out, static_cast<std::uint32_t>(depth_));
  append_u32(out, static_cast<std::uint32_t>(leaves_));
  for (const FlatNode& n : nodes_) {
    append_u32(out, n.meta);
    append_u16(out, n.kind);
    append_u16(out, n.attr);
    append_u32(out, std::bit_cast<std::uint32_t>(n.threshold));
    append_u32(out, n.mask);
  }
  return out;
}

CompiledTree CompiledTree::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) reject("truncated header");
  const std::uint8_t* p = bytes.data();
  if (read_u32(p) != kMagic) reject("bad magic");
  if (read_u32(p + 4) != kVersion) reject("unsupported version");
  const std::uint64_t count = read_u64(p + 8);
  const std::uint32_t depth = read_u32(p + 16);
  const std::uint32_t leaves = read_u32(p + 20);
  if (count == 0) reject("empty model");
  // The packed descent mirror keeps first-child in 27 bits (see
  // CompiledTree::DenseNode), which bounds acceptable models.
  if (count >= (std::uint64_t{1} << 27)) reject("node count out of range");
  // Depth and leaf count are re-derived and cross-checked structurally in
  // validate_and_index(), but reject absurd headers before they are
  // narrowed into the signed/int32 members below.
  if (depth >= (std::uint32_t{1} << 27)) reject("depth out of range");
  if (leaves > count) reject("leaf count exceeds node count");
  if (bytes.size() != kHeaderBytes + kNodeBytes * count) {
    reject(bytes.size() < kHeaderBytes + kNodeBytes * count
               ? "truncated node array"
               : "trailing bytes after the node array");
  }

  CompiledTree out;
  out.nodes_.resize(static_cast<std::size_t>(count));
  out.depth_ = static_cast<std::int32_t>(depth);
  out.leaves_ = leaves;
  p += kHeaderBytes;
  for (FlatNode& n : out.nodes_) {
    n.meta = read_u32(p);
    n.kind = read_u16(p + 4);
    n.attr = read_u16(p + 6);
    n.threshold = std::bit_cast<float>(read_u32(p + 8));
    n.mask = read_u32(p + 12);
    p += kNodeBytes;
  }
  out.validate_and_index();
  return out;
}

void CompiledTree::validate_and_index() {
  const std::size_t n = nodes_.size();
  if (n == 0) reject("empty model");
  std::vector<std::uint8_t> refs(n, 0);
  std::vector<std::int32_t> dep(n, 0);
  std::size_t leaves = 0;
  std::int32_t maxd = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlatNode& nd = nodes_[i];
    if (nd.is_leaf()) {
      ++leaves;
      if ((nd.meta >> 1) >= static_cast<std::uint32_t>(data::kNumClasses)) {
        reject("leaf label out of range");
      }
      if (nd.kind != 0 || nd.attr != 0 || nd.threshold != 0.0f ||
          nd.mask != 0) {
        reject("leaf carries split fields");
      }
    } else {
      if (nd.kind > 1) reject("bad split kind");
      const int limit =
          nd.kind ? data::kNumCategorical : data::kNumNumeric;
      if (nd.attr >= static_cast<std::uint16_t>(limit)) {
        reject("attribute id out of range");
      }
      if (nd.kind == 1 && nd.threshold != 0.0f) {
        reject("categorical node carries a threshold");
      }
      if (nd.kind == 0 && nd.mask != 0) reject("numeric node carries a mask");
      const std::uint64_t fc = nd.first_child();
      if (fc <= i) reject("children must come after the parent");
      if (fc + 1 >= n) reject("dangling child index");
      ++refs[static_cast<std::size_t>(fc)];
      ++refs[static_cast<std::size_t>(fc) + 1];
    }
  }
  if (refs[0] != 0) reject("root is referenced as a child");
  for (std::size_t i = 1; i < n; ++i) {
    if (refs[i] != 1) reject("node not referenced exactly once");
  }
  // Children come strictly after parents, so one forward pass settles all
  // depths; only then do leaves know theirs.
  for (std::size_t i = 0; i < n; ++i) {
    if (!nodes_[i].is_leaf()) {
      const std::size_t fc = nodes_[i].first_child();
      dep[fc] = dep[fc + 1] = dep[i] + 1;
    } else {
      maxd = std::max(maxd, dep[i]);
    }
  }
  if (maxd != depth_) reject("header depth does not match the structure");
  if (leaves != leaves_) {
    reject("header leaf count does not match the structure");
  }
  build_dense();
}

void save_compiled(const CompiledTree& tree,
                   const std::filesystem::path& path) {
  // pdc: io-wrapper(model persistence at the run boundary, outside the modeled timeline)
  const auto bytes = tree.to_bytes();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    throw std::runtime_error("save_compiled: cannot create " + path.string());
  }
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("save_compiled: short write " + path.string());
  }
}

CompiledTree load_compiled(const std::filesystem::path& path) {
  // pdc: io-wrapper(model persistence at the run boundary, outside the modeled timeline)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error("load_compiled: cannot open " + path.string());
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  std::fclose(f);
  return CompiledTree::from_bytes(bytes);
}

}  // namespace pdc::serve
