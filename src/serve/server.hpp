#pragma once

// pdc::serve prediction server: admission queue + batching + N sharded
// replicas of a compiled model + atomic hot-swap on retrain.
//
// Requests are whole RecordBlocks (the caller batches; the CLI and load
// generator slice their streams into --batch sized blocks).  A bounded
// admission queue applies backpressure to closed-loop clients: submit()
// blocks while the queue is at capacity, so an overloaded server slows its
// callers instead of buffering without bound.  Each of the N worker
// threads is one replica — it owns a published pointer to an immutable
// (CompiledTree, version) pair, copies that pointer once per batch, and
// scores the whole batch against that copy.  hot_swap() publishes a new
// model under each replica's pointer lock with a strictly increasing
// version number; in-flight batches finish on the model they started with,
// so every response is scored by exactly one model — old or new, never a
// mix — and the versions a replica serves only move forward.
//
// Shutdown drains: workers keep pulling until the queue is empty AND stop
// was requested, so every accepted request gets a response before join.
//
// Time: serving latency is real wall time by nature (this layer sits
// outside the modeled SPMD timeline), so it is measured once in
// wall_seconds() and fed to the stats and, when a Tracer is attached, to
// per-replica tracks whose modeled clocks advance by the measured service
// time — the serve timeline renders in the same Chrome trace viewer as
// training runs.

#include <array>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>  // pdc-lint: allow(PDC004) -- serve worker pool; replicas are threads by design, not SPMD ranks
#include <vector>

#include "common/sync.hpp"
#include "common/thread_annotations.hpp"
#include "mp/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/compiled_tree.hpp"
#include "serve/record_block.hpp"

namespace pdc::serve {

struct ServerConfig {
  int replicas = 1;
  std::size_t queue_capacity = 64;
  /// Optional trace sink: one track per replica (needs nranks() >=
  /// replicas).  Workers write only their own track, preserving the
  /// Tracer's thread-confinement contract.
  obs::Tracer* tracer = nullptr;
};

/// One scored batch.  `model_version` is the version of the compiled model
/// every label in this response was scored by (never a mix).
struct BatchResult {
  std::vector<std::int8_t> labels;
  std::uint64_t model_version = 0;
  int replica = 0;
  double latency_us = 0.0;  ///< admission -> completion, wall time
};

struct ReplicaStats {
  int replica = 0;
  std::uint64_t batches = 0;
  std::uint64_t records = 0;
  std::uint64_t min_version = 0;
  std::uint64_t max_version = 0;
  /// Number of times this replica observed the published version change
  /// between consecutive batches.
  std::uint64_t swaps_observed = 0;
  /// False if this replica ever served a version older than one it had
  /// already served (must stay true; asserted under TSan).
  bool version_monotonic = true;
};

/// log2-microsecond latency buckets: bucket i counts responses with
/// latency <= 2^i us; the last bucket is unbounded.
inline constexpr std::size_t kLatencyBuckets = 28;

struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t records = 0;
  std::uint64_t swaps = 0;
  std::uint64_t queue_highwater = 0;
  obs::HistogramSummary latency_us;
  std::array<std::uint64_t, kLatencyBuckets> latency_log2_us{};
  std::vector<ReplicaStats> replicas;
};

class Server {
 public:
  explicit Server(CompiledTree model, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues a batch; blocks while the queue is full (backpressure).
  /// Throws std::runtime_error after shutdown() has been requested.
  std::future<BatchResult> submit(RecordBlock block);

  /// Publishes `model` to every replica under its pointer lock and returns
  /// the new (strictly increasing) version.  In-flight batches finish on
  /// the model they started with.
  std::uint64_t hot_swap(CompiledTree model);

  /// The most recently published version (the initial model is version 0).
  std::uint64_t version() const;

  /// Stops admission, drains the queue, joins the workers.  Idempotent;
  /// also run by the destructor.
  void shutdown();

  ServerStats stats() const;

  int replicas() const { return static_cast<int>(replicas_.size()); }

 private:
  struct VersionedModel {
    CompiledTree tree;
    std::uint64_t version = 0;
  };

  struct Request {
    RecordBlock block;
    std::promise<BatchResult> promise;
    double enqueue_wall_s = 0.0;
  };

  struct Replica {
    Mutex model_mu;
    std::shared_ptr<const VersionedModel> model PDC_GUARDED_BY(model_mu);
  };

  void worker_loop(int r);

  // pdc: unshared(set in the constructor before the workers start and
  // immutable thereafter; workers only read it)
  ServerConfig cfg_;
  // pdc: unshared(the vector is filled in the constructor before the
  // workers start and never resized; the Replica elements it points to
  // carry their own model_mu capability)
  std::vector<std::unique_ptr<Replica>> replicas_;
  // pdc: unshared(per-replica modeled clocks for the optional trace
  // tracks; each slot is touched only by its replica's worker thread)
  std::vector<mp::Clock> clocks_;

  mutable Mutex queue_mu_;
  CondVar queue_nonempty_;
  CondVar queue_space_;
  std::deque<Request> queue_ PDC_GUARDED_BY(queue_mu_);
  bool stop_ PDC_GUARDED_BY(queue_mu_) = false;

  mutable Mutex swap_mu_;
  std::uint64_t published_version_ PDC_GUARDED_BY(swap_mu_) = 0;

  mutable Mutex stats_mu_;
  ServerStats stats_ PDC_GUARDED_BY(stats_mu_);
  std::vector<std::uint64_t> last_version_ PDC_GUARDED_BY(stats_mu_);
  std::vector<bool> replica_started_ PDC_GUARDED_BY(stats_mu_);

  // pdc: unshared(owned by the control plane: filled in the constructor,
  // joined and cleared in shutdown; the workers never touch their own
  // handles)
  std::vector<std::thread> workers_;  // pdc-lint: allow(PDC004) -- serve worker pool; replicas are threads by design, not SPMD ranks
};

}  // namespace pdc::serve
