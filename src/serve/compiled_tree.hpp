#pragma once

// Compiled decision-tree models: the serving-side representation of a
// trained clouds::DecisionTree.
//
// The trainer's pointer-linked arena (48-byte nodes carrying class counts,
// split metadata and parent/child bookkeeping) is the right shape for
// growing and pruning, and the wrong shape for answering millions of
// predictions: every descent chases cold pointers and branches on the
// split kind.  compile() flattens the live tree into a contiguous
// breadth-first array of 16-byte nodes — attribute id, threshold or
// categorical mask, and the left-child index with the leaf tag in the low
// bit — so a descent touches one cache line per level and the step is
// predicated (both the numeric and the categorical outcome are computed,
// the right one selected) instead of branched.  Children of one node are
// adjacent, which is what makes the step branchless: next = first_child +
// !goes_left.
//
// The batch evaluator streams a struct-of-arrays RecordBlock through the
// array in lane chunks, keeping many independent descents in flight so the
// per-level loads overlap instead of serializing into one dependent chain.
// This is the layer the prediction server (serve/server.hpp) shards into
// replicas.
//
// Compiled models serialize to a byte-deterministic blob (field-wise
// little-endian codec, no struct padding on the wire) and deserialization
// re-validates every structural invariant, so a blob from disk can never
// index out of bounds or descend forever.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "clouds/tree.hpp"
#include "data/record.hpp"
#include "serve/record_block.hpp"

namespace pdc::serve {

/// Leading magic of a compiled-model blob ("Fcdp" on disk); pairs with
/// clouds::detail::kTreeMagic so model-file consumers can dispatch on the
/// first four bytes (clouds::peek_model_magic).
inline constexpr std::uint32_t kCompiledMagic = 0x70646346;

/// One node of the compiled model.  `meta` carries the leaf tag in bit 0;
/// the remaining bits are the first-child index (internal nodes — the
/// right child is first_child + 1) or the class label (leaves).  Internal
/// nodes test either `num[attr] <= threshold` (kind 0) or bit `cat[attr]`
/// of `mask` (kind 1); leaves keep kind/attr/threshold/mask zeroed so the
/// codec is canonical and the predicated step reads safe indices.
struct FlatNode {
  std::uint32_t meta = 1;
  std::uint16_t kind = 0;
  std::uint16_t attr = 0;
  float threshold = 0.0f;
  std::uint32_t mask = 0;

  bool is_leaf() const { return (meta & 1u) != 0; }
  std::uint32_t first_child() const { return meta >> 1; }
  std::int8_t label() const { return static_cast<std::int8_t>(meta >> 1); }

  friend bool operator==(const FlatNode&, const FlatNode&) = default;
};

// The serving blob must be the same bytes on every compiler: the node is
// trivially copyable, exactly 16 bytes, and padding-free (every byte is a
// field byte), and the codec below still writes it field-wise — the same
// scrub discipline as DecisionTree::serialize().
static_assert(std::is_trivially_copyable_v<FlatNode>);
static_assert(sizeof(FlatNode) == 16);
static_assert(sizeof(FlatNode::meta) + sizeof(FlatNode::kind) +
                  sizeof(FlatNode::attr) + sizeof(FlatNode::threshold) +
                  sizeof(FlatNode::mask) ==
              sizeof(FlatNode));

class CompiledTree {
 public:
  /// Flattens the live (reachable) part of `tree` breadth-first.  The
  /// result classifies every record exactly as `tree` does.
  static CompiledTree compile(const clouds::DecisionTree& tree);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t leaf_count() const { return leaves_; }
  /// Depth of the deepest leaf (root = 0); every descent terminates in at
  /// most depth() steps.
  std::int32_t depth() const { return depth_; }
  std::span<const FlatNode> nodes() const { return nodes_; }

  /// Single-record branchless predicated descent over the packed 8-byte
  /// mirror: one load per level instead of a 16-byte node fetch.
  std::int8_t predict(const data::Record& r) const {
    const DenseNode* nd = dense_.data();
    std::uint32_t i = 0;
    std::uint32_t m = nd[0].meta2;
    while ((m & 1u) == 0) {
      const std::uint32_t payload = nd[i].payload;
      const std::uint32_t kind = (m >> 1) & 1u;
      const std::uint32_t attr = (m >> 2) & 7u;
      const std::size_t na = attr & (kind - 1u);
      const std::size_t ca = attr & (0u - kind);
      const bool num_left = r.num[na] <= std::bit_cast<float>(payload);
      const std::uint32_t cv =
          static_cast<std::uint32_t>(static_cast<std::uint8_t>(r.cat[ca])) &
          31u;
      const bool cat_left = ((payload >> cv) & 1u) != 0;
      const bool left = kind != 0 ? cat_left : num_left;
      i = (m >> 5) + static_cast<std::uint32_t>(!left);
      m = nd[i].meta2;
    }
    return static_cast<std::int8_t>(m >> 5);
  }

  /// Batch evaluation: one label per block row, written to `out`
  /// (out.size() >= block.size()).  Lane-chunked level-synchronous
  /// descent — up to kLanes independent descents advance one level per
  /// inner pass, so the node loads of different rows overlap.
  void predict_block(const RecordBlock& block,
                     std::span<std::int8_t> out) const;

  /// Fraction of block rows whose stored label the model reproduces.
  double accuracy(const RecordBlock& block) const;

  /// Index-checked descent for the structure fuzzer: throws
  /// std::runtime_error on any out-of-bounds node index and when the
  /// descent fails to reach a leaf within depth() steps.  `steps_out`
  /// (optional) receives the number of edges walked.
  std::int8_t predict_checked(const data::Record& r,
                              int* steps_out = nullptr) const;

  /// Byte-deterministic serialization (header + field-wise nodes).
  std::vector<std::uint8_t> to_bytes() const;
  /// Parses and fully validates a blob; throws std::runtime_error on a
  /// truncated document, bad magic/version, trailing bytes, or any
  /// structural violation (dangling child index, children not after the
  /// parent, malformed leaf/internal fields, wrong depth or leaf count).
  static CompiledTree from_bytes(std::span<const std::uint8_t> bytes);

  friend bool operator==(const CompiledTree& a, const CompiledTree& b) {
    return a.nodes_ == b.nodes_ && a.depth_ == b.depth_ &&
           a.leaves_ == b.leaves_;
  }

 private:
  /// Hot-path mirror of a FlatNode, packed to 8 bytes so the descent
  /// footprint is half the wire format's and a step issues one load.
  /// meta2: bit 0 leaf tag, bit 1 split kind, bits 2-4 attribute id,
  /// bits 5-31 first-child index (internal) or class label (leaf).
  /// payload: threshold bits (numeric), subset mask (categorical), 0
  /// (leaf).  Derived, never serialized — the public blob stays the
  /// 16-byte FlatNode array; the 27-bit child field is why node counts
  /// are capped at 2^27.
  struct DenseNode {
    std::uint32_t meta2 = 1;
    std::uint32_t payload = 0;
  };
  static_assert(sizeof(DenseNode) == 8);

  /// Rebuilds dense_ from nodes_; called after compile() and after
  /// from_bytes() validation.
  void build_dense();

  /// Re-derives depth/leaf counts and throws unless every structural
  /// invariant holds.  Called by from_bytes(); compile() satisfies the
  /// invariants by construction (asserted in tests, not re-checked on the
  /// hot path).
  void validate_and_index();

  std::vector<FlatNode> nodes_;
  std::vector<DenseNode> dense_;  // pdc: nonwire(derived descent mirror, rebuilt by build_dense() on both sides)
  std::int32_t depth_ = 0;
  std::size_t leaves_ = 1;
};

/// Blob persistence at the run boundary (same role as clouds::save_tree /
/// load_tree for the interpreted model).
void save_compiled(const CompiledTree& tree,
                   const std::filesystem::path& path);
CompiledTree load_compiled(const std::filesystem::path& path);

}  // namespace pdc::serve
