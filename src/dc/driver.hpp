#pragma once

// DcDriver: builds a divide-and-conquer tree in parallel over disk-resident
// data, under one of the paper's parallelization techniques:
//
//   kDataParallel   every task is solved by all processors, one after
//                   another.  No data movement at all: each rank streams its
//                   local slice, statistics are combined collectively.  The
//                   paper argues this is the technique of choice for large
//                   out-of-core tasks (I/O stays local and balanced).
//   kConcatenated   tasks of one tree level are solved together: their
//                   statistics are spooled into a single collective to save
//                   message startups, but every concurrently-open task
//                   stream shares the memory budget, so streaming blocks
//                   shrink with the level width — the out-of-core penalty
//                   the paper attributes to concatenated parallelism.
//   kTaskParallel   every task below the root split is assigned to a single
//                   owner with compute-dependent parallel I/O (data is
//                   redistributed to the owner, which solves the subtree
//                   locally).  Degenerates badly at upper levels, as the
//                   paper notes.
//   kMixed          the paper's choice: data parallelism for large tasks;
//                   tasks at or below `small_threshold` records are
//                   deferred, then assigned to single owners by LPT over
//                   their estimated costs and redistributed in one batched
//                   exchange ("delayed task parallelism").

#include <cmath>
#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/wire.hpp"
#include "dc/lpt.hpp"
#include "dc/problem.hpp"
#include "fault/checkpoint.hpp"
#include "io/local_disk.hpp"
#include "io/memory_budget.hpp"
#include "io/pipeline.hpp"
#include "mp/comm.hpp"
#include "obs/trace.hpp"

namespace pdc::dc {

enum class Strategy : int {
  kDataParallel = 0,
  kConcatenated = 1,
  kTaskParallel = 2,
  kMixed = 3,
  /// The paper's full task parallelism (Sec. 3.1): after each split the
  /// processor group divides into two subgroups sized by the children's
  /// costs, each child's data is redistributed onto its subgroup's disks
  /// (compute-dependent parallel I/O), and the subgroups recurse
  /// independently; singleton groups solve their subtree sequentially.
  kTaskGroups = 4,
};

struct DcConfig {
  Strategy strategy = Strategy::kMixed;
  /// Mixed: tasks with at most this many (global) records are deferred to
  /// delayed task parallelism.
  std::uint64_t small_threshold = 0;
  /// Per-rank memory for streaming buffers.
  std::size_t memory_bytes = 1 << 20;
  /// Keep the caller's root file intact (children get driver-owned files).
  bool preserve_root_file = true;
  /// Snapshot the queued loop's state (pending queues, partial result)
  /// every N dequeued tasks; 0 disables checkpointing.  Only the queued
  /// strategies (data-parallel / task-parallel / mixed) checkpoint —
  /// their loop runs in lockstep on every rank, so per-rank snapshots
  /// taken at the same iteration form a globally consistent cut.
  std::uint64_t checkpoint_every = 0;
  /// Start from the newest snapshot that is valid on EVERY rank, if one
  /// exists on the ranks' disks; otherwise run from scratch.
  bool resume = false;
  /// Async double-buffered streaming for the out-of-core hot paths
  /// (statistics scans, partition pass, redistribution spool).  Off by
  /// default: the synchronous path is the differential-test oracle.
  io::PipelineConfig pipeline;
};

struct DcReport {
  std::size_t large_tasks = 0;   ///< tasks processed with data parallelism
  std::size_t small_tasks = 0;   ///< tasks solved by single owners
  std::size_t leaves = 0;        ///< leaves declared by decide()/empty tasks
  std::size_t levels = 0;        ///< concatenated only
  double small_balance = 1.0;    ///< LPT load balance of the small phase
  std::uint64_t records_redistributed = 0;
  std::size_t checkpoints = 0;   ///< snapshots written this run
  bool resumed = false;          ///< this run started from a snapshot
};

template <mp::Wireable T>
class DcDriver {
 public:
  DcDriver(DcConfig cfg, io::LocalDisk& disk)
      : cfg_(cfg), disk_(&disk), budget_(cfg.memory_bytes) {}

  DcReport run(mp::Comm& comm, DcProblem<T>& problem,
               const std::string& root_file) {
    report_ = DcReport{};
    next_id_ = 1;
    ckpt_version_ = 1;

    Pending root;
    root.task.id = 0;
    root.task.parent = -1;
    root.task.depth = 0;
    root.file = root_file;
    root.task.global_n = global_count(comm, root_file);

    if (cfg_.strategy == Strategy::kConcatenated) {
      run_concatenated(comm, problem, std::move(root));
    } else if (cfg_.strategy == Strategy::kTaskGroups) {
      run_group(comm, problem, std::move(root), root_file);
    } else {
      run_queued(comm, problem, std::move(root));
    }
    return report_;
  }

  const DcReport& report() const { return report_; }

 private:
  struct Pending {
    Task task;
    std::string file;
  };

  // ------------------------------------------------------------ helpers ---

  std::uint64_t global_count(mp::Comm& comm, const std::string& file) {
    const std::uint64_t local = disk_->file_records<T>(file);
    return comm.all_reduce<std::uint64_t>(local);
  }

  typename DcProblem<T>::Scan make_scan(const std::string& file,
                                        std::size_t block) {
    return [this, file, block](const std::function<void(const T&)>& fn) {
      io::BlockReader<T> reader(*disk_, file, block, cfg_.pipeline);
      std::vector<T> buf;
      while (reader.next_block(buf)) {
        for (const auto& r : buf) fn(r);
      }
    };
  }

  void drop_file(const Pending& p, const std::string& root_file) {
    if (p.file != root_file || !cfg_.preserve_root_file) {
      disk_->remove(p.file);
    }
  }

  std::vector<std::byte> combined_stats(
      mp::Comm& comm, DcProblem<T>& problem,
      const std::vector<std::byte>& local) {
    auto sp = obs::SpanGuard(comm.tracer(), "combiner-exchange", "dc",
                             local.size());
    comm.tracer().observe("dc.combiner_message_bytes",
                          static_cast<double>(local.size()));
    auto blobs = comm.all_to_all_broadcast<std::byte>(local);
    std::vector<std::byte> acc = std::move(blobs[0]);
    for (int r = 1; r < comm.size(); ++r) {
      acc = problem.combine(std::move(acc),
                            blobs[static_cast<std::size_t>(r)]);
    }
    return acc;
  }

  /// Partition `parent` into two child tasks; returns them (files written,
  /// parent file removed).  `block` is the per-stream block size.
  std::pair<Pending, Pending> partition(
      mp::Comm& comm, DcProblem<T>& problem, const Pending& parent,
      const typename DcProblem<T>::Router& router, std::size_t block,
      const std::string& root_file) {
    auto sp = obs::SpanGuard(comm.tracer(), "partition-pass", "dc");
    Pending left;
    Pending right;
    left.file = "dc_" + std::to_string(next_id_);
    right.file = "dc_" + std::to_string(next_id_ + 1);
    std::uint64_t ln = 0;
    std::uint64_t rn = 0;
    {
      io::BlockWriter<T> lw(*disk_, left.file, block, cfg_.pipeline);
      io::BlockWriter<T> rw(*disk_, right.file, block, cfg_.pipeline);
      make_scan(parent.file, block)([&](const T& rec) {
        if (router(rec) == 0) {
          lw.append(rec);
          ++ln;
        } else {
          rw.append(rec);
          ++rn;
        }
      });
      lw.close();
      rw.close();
    }
    drop_file(parent, root_file);
    sp.set_n(ln + rn);
    comm.tracer().observe("dc.partition_pass_records",
                          static_cast<double>(ln + rn));

    // One combined collective settles both children's global sizes.
    struct Pair {
      std::uint64_t l, r;
    };
    const auto sums = comm.all_reduce<Pair>(
        Pair{ln, rn}, [](Pair a, const Pair& b) {
          a.l += b.l;
          a.r += b.r;
          return a;
        });

    left.task.id = next_id_++;
    right.task.id = next_id_++;
    left.task.parent = right.task.parent = parent.task.id;
    left.task.child_index = 0;
    right.task.child_index = 1;
    left.task.depth = right.task.depth = parent.task.depth + 1;
    left.task.global_n = sums.l;
    right.task.global_n = sums.r;

    problem.on_split(comm, parent.task, left.task, right.task);
    return {std::move(left), std::move(right)};
  }

  // ------------------------------------------- data / task / mixed loop ---

  void run_queued(mp::Comm& comm, DcProblem<T>& problem, Pending root) {
    const std::string root_file = root.file;
    const std::uint64_t threshold = small_threshold();

    std::deque<Pending> queue;
    std::vector<Pending> small;
    if (!cfg_.resume || !try_restore(comm, problem, queue, small)) {
      queue.push_back(std::move(root));
    }
    std::uint64_t since_ckpt = 0;

    while (!queue.empty()) {
      comm.tracer().counter("dc.queue_depth",
                            static_cast<double>(queue.size()));
      comm.tracer().counter("dc.small_backlog",
                            static_cast<double>(small.size()));
      // The loop body below is identical on every rank (the queue holds
      // the same tasks everywhere; only the record payloads differ), so
      // counting dequeues keeps the ranks' snapshot points aligned without
      // any extra collective.
      if (cfg_.checkpoint_every > 0 && since_ckpt >= cfg_.checkpoint_every) {
        write_checkpoint(comm, problem, queue, small);
        since_ckpt = 0;
      }
      ++since_ckpt;
      Pending cur = std::move(queue.front());
      queue.pop_front();

      if (cur.task.global_n == 0) {
        problem.on_leaf(comm, cur.task);
        ++report_.leaves;
        drop_file(cur, root_file);
        continue;
      }
      if (cur.task.global_n <= threshold) {
        small.push_back(std::move(cur));
        continue;
      }

      ++report_.large_tasks;
      auto sp = obs::SpanGuard(comm.tracer(), "large-node", "dc", obs::kNoArg,
                               cur.task.global_n);
      sp.set_depth(static_cast<std::uint64_t>(cur.task.depth));
      const std::size_t block = budget_.block_records(sizeof(T), 3);
      auto scan = make_scan(cur.file, block);
      const auto local = problem.local_stats(scan, cur.task);
      const auto global = combined_stats(comm, problem, local);
      auto router = problem.decide(comm, global, scan, cur.task);
      if (!router) {
        problem.on_leaf(comm, cur.task);
        ++report_.leaves;
        drop_file(cur, root_file);
        continue;
      }
      auto [left, right] =
          partition(comm, problem, cur, *router, block, root_file);
      queue.push_back(std::move(left));
      queue.push_back(std::move(right));
    }

    if (!small.empty()) {
      solve_small_batch(comm, problem, small, root_file);
    }
  }

  // ------------------------------------------------------- concatenated ---

  void run_concatenated(mp::Comm& comm, DcProblem<T>& problem, Pending root) {
    const std::string root_file = root.file;
    std::vector<Pending> level;
    level.push_back(std::move(root));

    while (!level.empty()) {
      ++report_.levels;
      // All tasks of the level are "solved together": every task keeps its
      // streams open conceptually, so the memory budget is split across the
      // whole level and blocks shrink accordingly.
      const std::size_t streams = 3 * level.size();
      const std::size_t block = budget_.block_records(sizeof(T), streams);

      // Spool all local statistics into ONE collective (saving the per-task
      // message startups — concatenated parallelism's selling point).
      std::vector<std::vector<std::byte>> locals(level.size());
      for (std::size_t i = 0; i < level.size(); ++i) {
        if (level[i].task.global_n == 0) continue;
        auto scan = make_scan(level[i].file, block);
        locals[i] = problem.local_stats(scan, level[i].task);
      }
      auto frames =
          comm.all_to_all_broadcast<std::byte>(frame_blobs(locals));
      std::vector<std::vector<std::byte>> combined =
          unframe_blobs(frames[0], level.size());
      for (int r = 1; r < comm.size(); ++r) {
        auto other = unframe_blobs(frames[static_cast<std::size_t>(r)],
                                   level.size());
        for (std::size_t i = 0; i < level.size(); ++i) {
          combined[i] = problem.combine(std::move(combined[i]), other[i]);
        }
      }

      std::vector<Pending> next;
      for (std::size_t i = 0; i < level.size(); ++i) {
        Pending& cur = level[i];
        if (cur.task.global_n == 0) {
          problem.on_leaf(comm, cur.task);
          ++report_.leaves;
          drop_file(cur, root_file);
          continue;
        }
        ++report_.large_tasks;
        auto scan = make_scan(cur.file, block);
        auto router = problem.decide(comm, combined[i], scan, cur.task);
        if (!router) {
          problem.on_leaf(comm, cur.task);
          ++report_.leaves;
          drop_file(cur, root_file);
          continue;
        }
        auto [left, right] =
            partition(comm, problem, cur, *router, block, root_file);
        next.push_back(std::move(left));
        next.push_back(std::move(right));
      }
      level = std::move(next);
    }
  }

  // ---------------------------------------- group task parallelism -------

  /// Recursive task parallelism with processor groups.  Invariant: the
  /// task's data lives only on the disks of `comm`'s members.
  void run_group(mp::Comm& comm, DcProblem<T>& problem, Pending cur,
                 const std::string& root_file) {
    if (cur.task.global_n == 0) {
      problem.on_leaf(comm, cur.task);
      ++report_.leaves;
      drop_file(cur, root_file);
      return;
    }
    if (comm.size() == 1) {
      // Terminal group: solve the whole subtree sequentially.
      auto data = disk_->read_file<T>(cur.file);
      drop_file(cur, root_file);
      ++report_.small_tasks;
      problem.solve_sequential(cur.task, std::move(data));
      return;
    }

    // One data-parallel split within the group.
    ++report_.large_tasks;
    const std::size_t block = budget_.block_records(sizeof(T), 3);
    auto scan = make_scan(cur.file, block);
    const auto local = problem.local_stats(scan, cur.task);
    const auto global = combined_stats(comm, problem, local);
    auto router = problem.decide(comm, global, scan, cur.task);
    if (!router) {
      problem.on_leaf(comm, cur.task);
      ++report_.leaves;
      drop_file(cur, root_file);
      return;
    }
    auto [left, right] =
        partition(comm, problem, cur, *router, block, root_file);

    // Subgroups sized by the children's estimated sequential costs.
    const double cl = problem.sequential_cost(left.task.global_n);
    const double cr = problem.sequential_cost(right.task.global_n);
    int pl = static_cast<int>(
        std::llround(comm.size() * cl / std::max(1e-12, cl + cr)));
    pl = std::max(1, std::min(comm.size() - 1, pl));
    const int color = comm.rank() < pl ? 0 : 1;

    // Compute-dependent parallel I/O: ship every record of each child onto
    // its subgroup's disks, round-robin for balance.  One exchange moves
    // both children (their destination sets are disjoint).
    Pending mine = redistribute(comm, problem, left, right, pl,
                                color == 0 ? left : right, block);

    mp::Comm sub = comm.split(color);
    run_group(sub, problem, std::move(mine), root_file);

    // Unwind: the two subgroups exchange their finished subtrees so every
    // member of this group holds the whole subtree of `cur`.
    const auto my_blob =
        problem.export_subtree(color == 0 ? left.task : right.task);
    const bool leader = comm.rank() == 0 || comm.rank() == pl;
    const auto blobs = comm.all_to_all_broadcast<std::byte>(
        leader ? my_blob : std::vector<std::byte>{});
    problem.absorb_subtree(color == 0 ? right.task : left.task,
                           blobs[static_cast<std::size_t>(color == 0 ? pl : 0)]);
  }

  /// Moves each child's records onto its subgroup's disks; returns the
  /// caller's own child with its file name rewritten to the received data.
  Pending redistribute(mp::Comm& comm, DcProblem<T>&, const Pending& left,
                       const Pending& right, int pl, const Pending& own,
                       std::size_t block) {
    auto sp = obs::SpanGuard(comm.tracer(), "redistribute", "dc");
    const auto p = static_cast<std::size_t>(comm.size());
    std::vector<std::vector<T>> outgoing(p);
    auto route_child = [&](const Pending& child, int base, int gsize) {
      std::uint64_t k = 0;
      make_scan(child.file, block)([&](const T& rec) {
        const auto dest = static_cast<std::size_t>(
            base + static_cast<int>(k % static_cast<std::uint64_t>(gsize)));
        // pdc: incore(redistribution staging: holds one local child slice for the subgroup all_to_all exchange)
        outgoing[dest].push_back(rec);
        ++k;
      });
      report_.records_redistributed += k;
      disk_->remove(child.file);
    };
    route_child(left, 0, pl);
    route_child(right, pl, comm.size() - pl);

    const auto incoming = comm.all_to_all<T>(outgoing);
    Pending mine = own;
    mine.file = "dcg_" + std::to_string(own.task.id);
    io::BlockWriter<T> writer(*disk_, mine.file, block, cfg_.pipeline);
    for (const auto& from_rank : incoming) {
      writer.append(std::span<const T>(from_rank));
    }
    writer.close();
    return mine;
  }

  // ------------------------------------------------ delayed task phase ---

  void solve_small_batch(mp::Comm& comm, DcProblem<T>& problem,
                         std::vector<Pending>& small,
                         const std::string& root_file) {
    auto sp = obs::SpanGuard(comm.tracer(), "small-node-drain", "dc",
                             obs::kNoArg, small.size());
    report_.small_tasks = small.size();

    // Deterministic owner assignment from the (globally known) task sizes.
    std::vector<double> costs(small.size());
    for (std::size_t i = 0; i < small.size(); ++i) {
      costs[i] = problem.sequential_cost(small[i].task.global_n);
    }
    const auto assign = lpt_assign(costs, comm.size());
    report_.small_balance = assign.balance;

    // Batched redistribution (compute-dependent parallel I/O): every rank
    // reads each small task's local slice once and ships it to the task's
    // owner; two collectives move everything ("delayed" = one exchange for
    // all small tasks instead of one per task).
    const auto p = static_cast<std::size_t>(comm.size());
    std::vector<std::vector<std::uint64_t>> meta(p);
    std::vector<std::vector<T>> payload(p);
    for (std::size_t i = 0; i < small.size(); ++i) {
      const auto dest = static_cast<std::size_t>(assign.owner[i]);
      auto slice = disk_->read_file<T>(small[i].file);
      report_.records_redistributed += slice.size();
      meta[dest].push_back(slice.size());
      payload[dest].insert(payload[dest].end(), slice.begin(), slice.end());
      drop_file(small[i], root_file);
    }
    const auto in_meta = comm.all_to_all<std::uint64_t>(meta);
    const auto in_payload = comm.all_to_all<T>(payload);

    // Owned tasks, in ascending position within `small` — the order both
    // the senders and the receiver enumerate them.
    std::vector<std::size_t> mine;
    for (std::size_t i = 0; i < small.size(); ++i) {
      if (assign.owner[i] == comm.rank()) mine.push_back(i);
    }

    std::vector<std::size_t> cursor(p, 0);  // per-source payload offset
    for (std::size_t k = 0; k < mine.size(); ++k) {
      std::vector<T> data;
      data.reserve(small[mine[k]].task.global_n);
      for (std::size_t src = 0; src < p; ++src) {
        const std::uint64_t n = in_meta[src][k];
        data.insert(data.end(),
                    in_payload[src].begin() +
                        static_cast<std::ptrdiff_t>(cursor[src]),
                    in_payload[src].begin() +
                        static_cast<std::ptrdiff_t>(cursor[src] + n));
        cursor[src] += n;
      }
      problem.solve_sequential(small[mine[k]].task, std::move(data));
    }
  }

  // --------------------------------------------- checkpoint / restart ---

  template <class V>
  static void append_raw(std::vector<std::byte>& out, const V& v) {
    static_assert(std::is_trivially_copyable_v<V>);
    const auto at = out.size();
    out.resize(at + sizeof(V));
    std::memcpy(out.data() + at, &v, sizeof(V));  // pdc-lint: allow(PDC010) -- trivially-copyable value onto the checkpoint wire
  }

  template <class V>
  static V take_raw(std::span<const std::byte> in, std::size_t& at) {
    static_assert(std::is_trivially_copyable_v<V>);
    if (at > in.size() || in.size() - at < sizeof(V)) {
      throw WireError("DcDriver: truncated checkpoint state");
    }
    V v;
    std::memcpy(&v, in.data() + at, sizeof(V));  // pdc-lint: allow(PDC010) -- trivially-copyable value off the wire; bounds-checked above
    at += sizeof(V);
    return v;
  }

  /// Snapshot this rank's view of the loop: driver counters, the problem's
  /// partial result, both pending queues, and the raw contents of every
  /// pending task's data file (the live files keep changing after the
  /// snapshot, so the snapshot must carry its own copies).  Purely local —
  /// no collective — because every rank reaches this point at the same
  /// iteration with the same version counter.
  void write_checkpoint(mp::Comm& comm, DcProblem<T>& problem,
                        const std::deque<Pending>& queue,
                        const std::vector<Pending>& small) {
    auto sp = obs::SpanGuard(comm.tracer(), "checkpoint-write", "fault");
    std::vector<fault::CheckpointBlob> blobs;
    std::vector<std::byte> state;
    append_raw(state, next_id_);
    append_raw(state, report_);
    append_raw(state, static_cast<std::uint64_t>(queue.size()));
    append_raw(state, static_cast<std::uint64_t>(small.size()));
    std::size_t idx = 0;
    auto add_entry = [&](const Pending& p) {
      append_raw(state, p.task);
      append_raw(state, static_cast<std::uint64_t>(p.file.size()));
      const auto at = state.size();
      state.resize(at + p.file.size());
      std::memcpy(state.data() + at, p.file.data(), p.file.size());  // pdc-lint: allow(PDC010) -- file-name bytes onto the wire, length framed above
      blobs.push_back({"task_" + std::to_string(idx++),
                       disk_->read_file<std::byte>(p.file)});
    };
    for (const auto& p : queue) add_entry(p);
    for (const auto& p : small) add_entry(p);
    blobs.push_back({"problem", problem.export_state()});
    blobs.push_back({"state", std::move(state)});

    fault::CheckpointStore store(*disk_);
    store.write(ckpt_version_, blobs);
    ++ckpt_version_;
    store.gc(2);
    ++report_.checkpoints;
    comm.tracer().count("fault.checkpoints");
  }

  /// Restart from the newest snapshot valid on every rank.  The agreement
  /// is one small collective: each rank publishes its list of locally
  /// valid versions, everyone intersects, and all ranks pick the same
  /// maximum — so a crash that left some ranks one version ahead (or with
  /// a torn snapshot) still resolves to a consistent cut.
  bool try_restore(mp::Comm& comm, DcProblem<T>& problem,
                   std::deque<Pending>& queue, std::vector<Pending>& small) {
    auto sp = obs::SpanGuard(comm.tracer(), "checkpoint-restore", "fault");
    fault::CheckpointStore store(*disk_);
    const auto mine = store.valid_versions();
    const auto all = comm.all_to_all_broadcast<std::uint64_t>(
        std::span<const std::uint64_t>(mine));
    std::set<std::uint64_t> common(all[0].begin(), all[0].end());
    for (int r = 1; r < comm.size(); ++r) {
      const std::set<std::uint64_t> theirs(
          all[static_cast<std::size_t>(r)].begin(),
          all[static_cast<std::size_t>(r)].end());
      std::erase_if(common,
                    [&](std::uint64_t v) { return !theirs.contains(v); });
    }
    if (common.empty()) return false;
    const std::uint64_t v = *common.rbegin();

    const auto state = store.read_blob(v, "state");
    std::size_t at = 0;
    next_id_ = take_raw<std::int64_t>(state, at);
    report_ = take_raw<DcReport>(state, at);
    const auto n_queue = take_raw<std::uint64_t>(state, at);
    const auto n_small = take_raw<std::uint64_t>(state, at);
    // Every pending entry costs at least a Task plus a u64 name length on
    // the wire; counts the remaining bytes cannot hold are corrupt.
    const std::size_t entry_floor = sizeof(Task) + sizeof(std::uint64_t);
    if (n_queue > (state.size() - at) / entry_floor ||
        n_small > (state.size() - at) / entry_floor) {
      throw WireError("DcDriver: pending count overruns checkpoint state");
    }
    std::size_t idx = 0;
    auto take_entry = [&]() {
      Pending p;
      p.task = take_raw<Task>(state, at);
      const auto len = take_raw<std::uint64_t>(state, at);
      if (state.size() - at < len) {
        throw WireError("DcDriver: truncated checkpoint state");
      }
      p.file.assign(reinterpret_cast<const char*>(state.data() + at),  // pdc-lint: allow(PDC010) -- file-name bytes off the wire; len bounds-checked above
                    static_cast<std::size_t>(len));
      at += len;
      const auto content =
          store.read_blob(v, "task_" + std::to_string(idx++));
      disk_->write_file<std::byte>(p.file, content);
      return p;
    };
    for (std::uint64_t i = 0; i < n_queue; ++i) queue.push_back(take_entry());
    for (std::uint64_t i = 0; i < n_small; ++i) small.push_back(take_entry());
    problem.restore_state(store.read_blob(v, "problem"));

    // The next snapshot overwrites anything past the agreed cut (a rank
    // that was a version ahead simply re-writes v+1 from the replay).
    ckpt_version_ = v + 1;
    report_.resumed = true;
    comm.tracer().count("fault.resumes");
    return true;
  }

  // --------------------------------------------------------- framing ---

  static std::vector<std::byte> frame_blobs(
      const std::vector<std::vector<std::byte>>& blobs) {
    std::vector<std::uint64_t> sizes;
    sizes.reserve(blobs.size());
    std::size_t total = 0;
    for (const auto& b : blobs) {
      sizes.push_back(b.size());
      total += b.size();
    }
    std::vector<std::byte> out;
    out.reserve(sizes.size() * sizeof(std::uint64_t) + total);
    const auto header = mp::to_bytes(std::span<const std::uint64_t>(sizes));
    out.insert(out.end(), header.begin(), header.end());
    for (const auto& b : blobs) out.insert(out.end(), b.begin(), b.end());
    return out;
  }

  static std::vector<std::vector<std::byte>> unframe_blobs(
      const std::vector<std::byte>& frame, std::size_t count) {
    if (frame.size() < count * sizeof(std::uint64_t)) {
      throw WireError("DcDriver: frame too short for its size header");
    }
    std::vector<std::vector<std::byte>> out(count);
    const auto sizes = mp::from_bytes<std::uint64_t>(std::span(
        frame.data(), count * sizeof(std::uint64_t)));
    std::size_t off = count * sizeof(std::uint64_t);
    for (std::size_t i = 0; i < count; ++i) {
      // Each framed size must fit in what is left of the payload before it
      // drives the copy below.
      if (sizes[i] > frame.size() - off) {
        throw WireError("DcDriver: framed blob overruns the payload");
      }
      out[i].assign(frame.begin() + static_cast<std::ptrdiff_t>(off),
                    frame.begin() +
                        static_cast<std::ptrdiff_t>(off + sizes[i]));
      off += sizes[i];
    }
    return out;
  }

  std::uint64_t small_threshold() const {
    switch (cfg_.strategy) {
      case Strategy::kDataParallel:
      case Strategy::kConcatenated:
        return 0;
      case Strategy::kTaskParallel:
        return ~std::uint64_t{0};
      case Strategy::kTaskGroups:
        return 0;  // unused: run_group never consults the threshold
      case Strategy::kMixed:
        return cfg_.small_threshold;
    }
    return 0;
  }

  DcConfig cfg_;
  io::LocalDisk* disk_;
  io::MemoryBudget budget_;
  DcReport report_;
  std::int64_t next_id_ = 1;
  std::uint64_t ckpt_version_ = 1;
};

}  // namespace pdc::dc
