#pragma once

// Longest-processing-time (LPT) task assignment: small tasks are assigned
// to single processors "based on the task costs" (paper, Sections 3.4/5).
// Deterministic, so every rank computes the identical assignment locally
// with no extra communication.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <queue>
#include <vector>

namespace pdc::dc {

struct LptAssignment {
  std::vector<int> owner;       ///< per task
  std::vector<double> load;     ///< per rank
  double makespan = 0.0;        ///< max load
  double balance = 1.0;         ///< mean load / max load
};

inline LptAssignment lpt_assign(const std::vector<double>& costs, int nprocs) {
  LptAssignment out;
  out.owner.assign(costs.size(), 0);
  out.load.assign(static_cast<std::size_t>(nprocs), 0.0);
  if (costs.empty() || nprocs <= 0) return out;

  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });

  // Min-heap of (load, rank); ties broken by lower rank for determinism.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (int r = 0; r < nprocs; ++r) heap.emplace(0.0, r);

  for (auto idx : order) {
    auto [load, rank] = heap.top();
    heap.pop();
    out.owner[idx] = rank;
    heap.emplace(load + costs[idx], rank);
    out.load[static_cast<std::size_t>(rank)] += costs[idx];
  }
  out.makespan = *std::max_element(out.load.begin(), out.load.end());
  const double mean =
      std::accumulate(out.load.begin(), out.load.end(), 0.0) / nprocs;
  out.balance = out.makespan > 0.0 ? mean / out.makespan : 1.0;
  return out;
}

}  // namespace pdc::dc
