#pragma once

// The generic parallel out-of-core divide-and-conquer problem interface
// (paper, Section 3).
//
// A problem instance is a divide-and-conquer tree.  The root task holds the
// entire data set, distributed at random across the ranks' local disks;
// each internal task is split into two subtasks (binary trees, as in the
// paper).  The framework (DcDriver) owns data placement, streaming,
// partitioning and the parallelization strategy; the problem supplies the
// domain logic through this interface:
//
//   local_stats  one streaming pass over the rank's slice of a task,
//                producing a statistics blob,
//   combine      associative merge of two blobs (folded in rank order),
//   decide       given the globally combined blob, either produce a Router
//                (record -> child 0/1) or declare the task a leaf.  decide
//                is collective: it may run further collectives and further
//                local passes (e.g. CLOUDS' alive-interval pass), and must
//                reach the same conclusion on every rank,
//   on_split / on_leaf
//                bookkeeping hooks, called identically on every rank,
//   solve_sequential
//                solve a whole subtask locally on its assigned owner rank
//                (the endpoint of task parallelism / small nodes).

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "mp/comm.hpp"
#include "mp/serialize.hpp"

namespace pdc::dc {

struct Task {
  std::int64_t id = 0;
  std::int64_t parent = -1;
  int child_index = 0;  ///< 0 = left child of parent, 1 = right
  int depth = 0;
  std::uint64_t global_n = 0;  ///< records across all ranks
};

template <mp::Wireable T>
class DcProblem {
 public:
  /// Invokes the callback once per record of the local slice (one pass).
  using Scan = std::function<void(const std::function<void(const T&)>&)>;
  /// Maps a record to child 0 (left) or 1 (right); must be a pure function
  /// of the record and identical across ranks.
  using Router = std::function<int(const T&)>;

  virtual ~DcProblem() = default;

  virtual std::vector<std::byte> local_stats(const Scan& scan,
                                             const Task& task) = 0;

  virtual std::vector<std::byte> combine(std::vector<std::byte> a,
                                         const std::vector<std::byte>& b) = 0;

  virtual std::optional<Router> decide(mp::Comm& comm,
                                       const std::vector<std::byte>& stats,
                                       const Scan& scan, const Task& task) = 0;

  virtual void on_split(mp::Comm& comm, const Task& parent, const Task& left,
                        const Task& right) {
    (void)comm;
    (void)parent;
    (void)left;
    (void)right;
  }

  virtual void on_leaf(mp::Comm& comm, const Task& task) {
    (void)comm;
    (void)task;
  }

  /// Solve the whole subtree of `task` on this rank alone.  Called only on
  /// the task's owner, with the task's full (redistributed) data.
  virtual void solve_sequential(const Task& task, std::vector<T> data) = 0;

  /// Group task parallelism only: serialize this rank's result for the
  /// finished subtree of `task` so the driver can hand it to the sibling
  /// processor group.  Called on every member of the group that solved the
  /// task; the driver broadcasts only the group leader's blob.
  virtual std::vector<std::byte> export_subtree(const Task& task) {
    (void)task;
    return {};
  }

  /// Group task parallelism only: merge a sibling group's finished subtree
  /// (as produced by its leader's export_subtree).
  virtual void absorb_subtree(const Task& task,
                              std::span<const std::byte> blob) {
    (void)task;
    (void)blob;
  }

  /// Estimated cost of solving a task of n records sequentially; drives the
  /// LPT owner assignment for small tasks.  Default: n log n (sort-bound).
  virtual double sequential_cost(std::uint64_t n) const {
    const double dn = static_cast<double>(n);
    return n <= 1 ? 1.0 : dn * std::log2(dn);
  }

  /// Checkpointing: serialize this rank's complete problem state (partial
  /// result plus whatever per-task context outlives one driver iteration).
  /// Called by the driver at a loop boundary on every rank; restore_state
  /// must rebuild an equivalent object so that a resumed run makes the
  /// exact same decisions as an uninterrupted one.  The default (empty
  /// blob, no-op restore) is correct only for stateless problems.
  virtual std::vector<std::byte> export_state() const { return {}; }
  virtual void restore_state(std::span<const std::byte> blob) { (void)blob; }
};

}  // namespace pdc::dc
