#include "data/agrawal.hpp"

#include <cmath>
#include <stdexcept>

namespace pdc::data {

namespace {

// Counter-based RNG: a splitmix64 stream keyed by (seed, index) gives each
// record its own reproducible randomness regardless of generation order.
struct Stream {
  std::uint64_t state;

  explicit Stream(std::uint64_t key) : state(key) {}

  std::uint64_t next_u64() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_unit(); }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(next_u64() %
                                 static_cast<std::uint64_t>(hi - lo + 1));
  }
};

std::uint64_t mix_key(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed * 0x9E3779B97F4A7C15ull + index + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool in_range(double v, double lo, double hi) { return lo <= v && v <= hi; }

}  // namespace

AgrawalGenerator::AgrawalGenerator(GeneratorConfig cfg) : cfg_(cfg) {
  if (cfg.function < 1 || cfg.function > 10) {
    throw std::invalid_argument("AgrawalGenerator: function must be in 1..10");
  }
  if (cfg.label_noise < 0.0 || cfg.label_noise >= 1.0) {
    throw std::invalid_argument("AgrawalGenerator: noise must be in [0,1)");
  }
}

bool AgrawalGenerator::is_group_a(int function, const Record& r) {
  const double salary = r.num[kSalary];
  const double commission = r.num[kCommission];
  const double age = r.num[kAge];
  const double hvalue = r.num[kHValue];
  const double hyears = r.num[kHYears];
  const double loan = r.num[kLoan];
  const int elevel = r.cat[kELevel];

  switch (function) {
    case 1:
      return age < 40 || age >= 60;
    case 2:
      // The paper's function: age bands with salary windows.
      if (age < 40) return in_range(salary, 50'000, 100'000);
      if (age < 60) return in_range(salary, 75'000, 125'000);
      return in_range(salary, 25'000, 75'000);
    case 3:
      if (age < 40) return elevel <= 1;
      if (age < 60) return elevel >= 1 && elevel <= 3;
      return elevel >= 2;
    case 4:
      if (age < 40) {
        return elevel <= 1 ? in_range(salary, 25'000, 75'000)
                           : in_range(salary, 50'000, 100'000);
      }
      if (age < 60) {
        return (elevel >= 1 && elevel <= 3) ? in_range(salary, 50'000, 100'000)
                                            : in_range(salary, 75'000, 125'000);
      }
      return elevel >= 2 ? in_range(salary, 50'000, 100'000)
                         : in_range(salary, 25'000, 75'000);
    case 5:
      if (age < 40) {
        return in_range(salary, 50'000, 100'000)
                   ? in_range(loan, 100'000, 300'000)
                   : in_range(loan, 200'000, 400'000);
      }
      if (age < 60) {
        return in_range(salary, 75'000, 125'000)
                   ? in_range(loan, 200'000, 400'000)
                   : in_range(loan, 300'000, 500'000);
      }
      return in_range(salary, 25'000, 75'000)
                 ? in_range(loan, 300'000, 500'000)
                 : in_range(loan, 100'000, 300'000);
    case 6: {
      const double t = salary + commission;
      if (age < 40) return in_range(t, 50'000, 100'000);
      if (age < 60) return in_range(t, 75'000, 125'000);
      return in_range(t, 25'000, 75'000);
    }
    case 7:
      return 0.67 * (salary + commission) - 0.2 * loan - 20'000 > 0;
    case 8:
      return 0.67 * (salary + commission) - 5'000.0 * elevel - 20'000 > 0;
    case 9:
      return 0.67 * (salary + commission) - 5'000.0 * elevel - 0.2 * loan +
                 10'000 >
             0;
    case 10: {
      const double equity =
          hyears >= 20 ? 0.1 * hvalue * (hyears - 20.0) : 0.0;
      return 0.67 * (salary + commission) - 5'000.0 * elevel + 0.2 * equity -
                 10'000 >
             0;
    }
    default:
      throw std::invalid_argument("unknown classification function");
  }
}

Record AgrawalGenerator::make(std::uint64_t index) const {
  Stream s(mix_key(cfg_.seed, index));
  Record r{};

  const double salary = s.uniform(20'000, 150'000);
  const double commission =
      salary >= 75'000 ? 0.0 : s.uniform(10'000, 75'000);
  const double age = s.uniform(20, 80);
  const int elevel = s.uniform_int(0, 4);
  const int car = s.uniform_int(0, 19);
  const int zipcode = s.uniform_int(0, 8);
  // House value depends on the zipcode bucket, per the original generator.
  const double k = zipcode + 1.0;
  const double hvalue = s.uniform(0.5 * k * 100'000, 1.5 * k * 100'000);
  const double hyears = s.uniform(1, 30);
  const double loan = s.uniform(0, 500'000);

  r.num[kSalary] = static_cast<float>(salary);
  r.num[kCommission] = static_cast<float>(commission);
  r.num[kAge] = static_cast<float>(age);
  r.num[kHValue] = static_cast<float>(hvalue);
  r.num[kHYears] = static_cast<float>(hyears);
  r.num[kLoan] = static_cast<float>(loan);
  r.cat[kELevel] = static_cast<std::int8_t>(elevel);
  r.cat[kCar] = static_cast<std::int8_t>(car);
  r.cat[kZipcode] = static_cast<std::int8_t>(zipcode);

  bool group_a = is_group_a(cfg_.function, r);
  if (cfg_.label_noise > 0.0 && s.next_unit() < cfg_.label_noise) {
    group_a = !group_a;
  }
  r.label = group_a ? 0 : 1;

  if (cfg_.perturbation > 0.0) {
    // Attribute ranges of the generator (hvalue uses the widest zipcode).
    static constexpr std::array<double, kNumNumeric> kRange = {
        130'000, 65'000, 60, 1'300'000, 29, 500'000};
    for (int a = 0; a < kNumNumeric; ++a) {
      const double delta = cfg_.perturbation *
                           kRange[static_cast<std::size_t>(a)] *
                           (s.next_unit() - 0.5);
      r.num[static_cast<std::size_t>(a)] += static_cast<float>(delta);
    }
  }
  return r;
}

std::vector<Record> AgrawalGenerator::make_range(std::uint64_t begin,
                                                 std::uint64_t end) const {
  std::vector<Record> out;
  out.reserve(end - begin);
  for (std::uint64_t i = begin; i < end; ++i) out.push_back(make(i));
  return out;
}

}  // namespace pdc::data
