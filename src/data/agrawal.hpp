#pragma once

// The synthetic data generator of Agrawal, Ghosh, Imielinski, Iyer and Swami
// ("An Interval Classifier for Database Mining Applications", VLDB'92 /
// "Database Mining: A Performance Perspective", TKDE'93), as used by SLIQ
// [11], SPRINT [14], CLOUDS [3] and this paper (which uses classification
// function 2 on 3.6M-7.2M records).
//
// The generator is *index addressable*: record i is a pure function of
// (seed, i), so any rank can materialize exactly its slice of a globally
// well-defined dataset, and the same global dataset can be re-dealt across
// any processor count — essential for cross-p determinism tests and for the
// speedup experiments.

#include <cstdint>
#include <vector>

#include "data/record.hpp"

namespace pdc::data {

/// Which of the ten classification functions labels the records.
/// The paper's experiments use function 2.
struct GeneratorConfig {
  int function = 2;         ///< classification function, 1..10
  std::uint64_t seed = 1;   ///< stream seed
  double label_noise = 0.0; ///< probability of flipping the label

  /// The original generator's perturbation factor: after the label is
  /// assigned, every numeric attribute value is shifted by a uniform draw
  /// from +-(perturbation/2) of the attribute's range, blurring the class
  /// boundaries without corrupting the labels.  Agrawal et al. use 5%.
  double perturbation = 0.0;
};

class AgrawalGenerator {
 public:
  explicit AgrawalGenerator(GeneratorConfig cfg);

  /// Deterministically materialize record `index` of the global dataset.
  Record make(std::uint64_t index) const;

  std::vector<Record> make_range(std::uint64_t begin, std::uint64_t end) const;

  /// The label function applied to already-drawn attributes; exposed so
  /// tests can check classifier accuracy against ground truth.
  static bool is_group_a(int function, const Record& r);

  const GeneratorConfig& config() const { return cfg_; }

 private:
  GeneratorConfig cfg_;
};

}  // namespace pdc::data
