#pragma once

// Initial data distribution.
//
// The paper assumes the n training records are distributed at random,
// (near-)equally across the p processors before computation starts, and its
// load-balance arguments rest on Angluin-Valiant style bounds (Theorem 1 /
// Lemma 2): a random distribution puts n/p + O(sqrt(n/p log n)) records on
// each processor, and the same holds for any subset (e.g. a tree node's
// records) — which is why data parallelism balances without redistribution.
//
// The assignment is a pure hash of the record index, so it is reproducible
// and any rank can enumerate its slice independently.

#include <cstdint>
#include <vector>

namespace pdc::data {

namespace detail {
inline std::uint64_t mix64(std::uint64_t seed, std::uint64_t x) {
  std::uint64_t z = seed * 0x9E3779B97F4A7C15ull + x + 0x632BE59BD9B4E019ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Random (hash-based) assignment of global record indices to ranks.
class DatasetPartition {
 public:
  DatasetPartition(std::uint64_t total_records, int nprocs,
                   std::uint64_t seed = 42)
      : total_(total_records), nprocs_(nprocs), seed_(seed) {}

  std::uint64_t total_records() const { return total_; }
  int nprocs() const { return nprocs_; }

  int owner_of(std::uint64_t index) const {
    return static_cast<int>(detail::mix64(seed_, index) %
                            static_cast<std::uint64_t>(nprocs_));
  }

  /// All global indices owned by `rank`, ascending.
  std::vector<std::uint64_t> indices_of(int rank) const {
    std::vector<std::uint64_t> out;
    out.reserve(static_cast<std::size_t>(
        total_ / static_cast<std::uint64_t>(nprocs_) + 64));
    for (std::uint64_t i = 0; i < total_; ++i) {
      if (owner_of(i) == rank) out.push_back(i);
    }
    return out;
  }

  std::uint64_t count_of(int rank) const {
    std::uint64_t c = 0;
    for (std::uint64_t i = 0; i < total_; ++i) {
      if (owner_of(i) == rank) ++c;
    }
    return c;
  }

 private:
  std::uint64_t total_;
  int nprocs_;
  std::uint64_t seed_;
};

/// Deterministic Bernoulli sampler over record indices: record i belongs to
/// the pre-drawn sample set S with probability `rate`, independently of the
/// processor layout.  CLOUDS builds its interval boundaries from S.
class Sampler {
 public:
  Sampler(double rate, std::uint64_t seed = 7)
      : threshold_(rate >= 1.0
                       ? ~0ull
                       : static_cast<std::uint64_t>(
                             rate * 18446744073709551615.0)),
        seed_(seed) {}

  bool contains(std::uint64_t index) const {
    return detail::mix64(seed_, index) <= threshold_;
  }

 private:
  std::uint64_t threshold_;
  std::uint64_t seed_;
};

}  // namespace pdc::data
