#pragma once

// The record layout of the paper's synthetic workload (Agrawal et al.'s
// generator, as used by SLIQ, SPRINT and CLOUDS): six numeric and three
// categorical attributes plus a binary class label.
//
// Records are trivially copyable so they can move through the
// message-passing layer and on/off disk without any translation step.

#include <array>
#include <type_traits>
#include <cstdint>
#include <string_view>

namespace pdc::data {

inline constexpr int kNumNumeric = 6;
inline constexpr int kNumCategorical = 3;
inline constexpr int kNumAttributes = kNumNumeric + kNumCategorical;
inline constexpr int kNumClasses = 2;

/// Indices into Record::num.
enum NumericAttr : int {
  kSalary = 0,
  kCommission = 1,
  kAge = 2,
  kHValue = 3,
  kHYears = 4,
  kLoan = 5,
};

/// Indices into Record::cat.
enum CategoricalAttr : int {
  kELevel = 0,  ///< education level, 0..4
  kCar = 1,     ///< car make, 0..19
  kZipcode = 2, ///< zipcode bucket, 0..8
};

/// Cardinality of each categorical attribute.
inline constexpr std::array<int, kNumCategorical> kCatCardinality = {5, 20, 9};

inline constexpr std::array<std::string_view, kNumNumeric> kNumericNames = {
    "salary", "commission", "age", "hvalue", "hyears", "loan"};
inline constexpr std::array<std::string_view, kNumCategorical> kCatNames = {
    "elevel", "car", "zipcode"};

struct Record {
  std::array<float, kNumNumeric> num;
  std::array<std::int8_t, kNumCategorical> cat;
  std::int8_t label;  ///< 0 = group A, 1 = group B

  friend bool operator==(const Record&, const Record&) = default;
};

static_assert(sizeof(Record) == 28, "Record layout must stay fixed on disk");

/// Class frequency vector: one count per class.  A struct (not an array
/// alias) so the arithmetic operators are found by ADL from any namespace.
struct ClassCounts {
  std::array<std::int64_t, kNumClasses> v{};

  std::int64_t& operator[](std::size_t k) { return v[k]; }
  const std::int64_t& operator[](std::size_t k) const { return v[k]; }

  auto begin() { return v.begin(); }
  auto end() { return v.end(); }
  auto begin() const { return v.begin(); }
  auto end() const { return v.end(); }

  friend bool operator==(const ClassCounts&, const ClassCounts&) = default;

  ClassCounts& operator+=(const ClassCounts& o) {
    for (int k = 0; k < kNumClasses; ++k) v[static_cast<std::size_t>(k)] +=
        o.v[static_cast<std::size_t>(k)];
    return *this;
  }

  friend ClassCounts operator+(ClassCounts a, const ClassCounts& b) {
    a += b;
    return a;
  }

  friend ClassCounts operator-(const ClassCounts& a, const ClassCounts& b) {
    ClassCounts out{};
    for (int k = 0; k < kNumClasses; ++k) {
      out.v[static_cast<std::size_t>(k)] =
          a.v[static_cast<std::size_t>(k)] - b.v[static_cast<std::size_t>(k)];
    }
    return out;
  }
};

static_assert(std::is_trivially_copyable_v<ClassCounts>);

inline std::int64_t total(const ClassCounts& c) {
  std::int64_t t = 0;
  for (auto x : c.v) t += x;
  return t;
}

}  // namespace pdc::data
