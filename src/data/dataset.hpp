#pragma once

// Glue between the generator, the initial random distribution and the
// per-rank disks: materializes each rank's slice of the training set as a
// record file on that rank's local disk (the paper's starting condition),
// and draws the in-memory sample set S used by CLOUDS.

#include <cstdint>
#include <string>
#include <vector>

#include "data/agrawal.hpp"
#include "data/partition.hpp"
#include "data/record.hpp"
#include "io/local_disk.hpp"

namespace pdc::data {

/// Writes rank `rank`'s randomly-assigned slice of the global dataset to
/// `name` on `disk`, streaming `block_records` per request.  Returns the
/// number of records written.
inline std::uint64_t materialize_local_slice(const AgrawalGenerator& gen,
                                             const DatasetPartition& part,
                                             int rank, io::LocalDisk& disk,
                                             const std::string& name,
                                             std::size_t block_records) {
  io::RecordWriter<Record> writer(disk, name, block_records);
  for (std::uint64_t i = 0; i < part.total_records(); ++i) {
    if (part.owner_of(i) == rank) writer.append(gen.make(i));
  }
  writer.close();
  return writer.count();
}

/// Draws rank `rank`'s part of the pre-drawn sample set S (kept in memory).
inline std::vector<Record> draw_local_sample(const AgrawalGenerator& gen,
                                             const DatasetPartition& part,
                                             const Sampler& sampler,
                                             int rank) {
  std::vector<Record> out;
  for (std::uint64_t i = 0; i < part.total_records(); ++i) {
    if (part.owner_of(i) == rank && sampler.contains(i)) {
      out.push_back(gen.make(i));
    }
  }
  return out;
}

/// A held-out test set: the `count` records after the training range.
inline std::vector<Record> make_test_set(const AgrawalGenerator& gen,
                                         std::uint64_t train_records,
                                         std::uint64_t count) {
  return gen.make_range(train_records, train_records + count);
}

}  // namespace pdc::data
