#include "clouds/tree.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <functional>
#include <sstream>

#include "common/wire.hpp"

namespace pdc::clouds {

namespace {

// Structural validation of a deserialized node arena.  The bytes may
// come from a corrupt model file or checkpoint blob, so every field that
// later feeds an array index or a tree walk is range-checked before the
// arena is adopted.  bool/enum octets are inspected as raw bytes: a
// flipped bit must be rejected here, not loaded through a bool lvalue.
void validate_arena(const std::vector<TreeNode>& nodes) {
  const auto count = static_cast<std::int32_t>(nodes.size());
  for (std::int32_t i = 0; i < count; ++i) {
    const TreeNode& n = nodes[static_cast<std::size_t>(i)];
    std::uint8_t leaf_byte = 0;
    std::uint8_t kind_byte = 0;
    std::memcpy(&leaf_byte, &n.leaf, 1);  // pdc-lint: allow(PDC010) -- byte-level inspection of untrusted bool, deliberately not a bool load
    std::memcpy(&kind_byte, &n.split.kind, 1);  // pdc-lint: allow(PDC010) -- byte-level inspection of untrusted enum octet
    if (leaf_byte > 1) {
      throw WireError("DecisionTree: node leaf flag is not a bool");
    }
    if (n.label < 0 || n.label >= data::kNumClasses) {
      throw WireError("DecisionTree: node label out of class range");
    }
    if (leaf_byte == 1) continue;
    if (kind_byte > 1) {
      throw WireError("DecisionTree: split kind out of range");
    }
    const int limit = n.split.kind == Split::Kind::kNumeric
                          ? data::kNumNumeric
                          : data::kNumCategorical;
    if (n.split.attr < 0 || n.split.attr >= limit) {
      throw WireError("DecisionTree: split attribute out of range");
    }
    // Children always live later in the arena (grow/graft append), so
    // strictly increasing indices double as a termination proof for
    // every walk.
    if (n.left <= i || n.left >= count || n.right <= i ||
        n.right >= count) {
      throw WireError("DecisionTree: child index out of range");
    }
  }
}

}  // namespace

DecisionTree::DecisionTree(const data::ClassCounts& root_counts) {
  TreeNode root;
  root.counts = root_counts;
  set_majority(root);
  nodes_.push_back(root);
}

void DecisionTree::set_majority(TreeNode& n) {
  int best = 0;
  for (int k = 1; k < data::kNumClasses; ++k) {
    if (n.counts[static_cast<std::size_t>(k)] >
        n.counts[static_cast<std::size_t>(best)]) {
      best = k;
    }
  }
  n.label = static_cast<std::int8_t>(best);
}

std::pair<std::int32_t, std::int32_t> DecisionTree::grow(
    std::int32_t id, const Split& split, const data::ClassCounts& left,
    const data::ClassCounts& right) {
  const auto lid = static_cast<std::int32_t>(nodes_.size());
  const auto rid = lid + 1;
  TreeNode l;
  l.counts = left;
  l.depth = node(id).depth + 1;
  set_majority(l);
  TreeNode r;
  r.counts = right;
  r.depth = node(id).depth + 1;
  set_majority(r);
  nodes_.push_back(l);
  nodes_.push_back(r);

  TreeNode& parent = node(id);
  parent.leaf = false;
  parent.split = split;
  parent.left = lid;
  parent.right = rid;
  return {lid, rid};
}

void DecisionTree::collapse(std::int32_t id) {
  TreeNode& n = node(id);
  n.leaf = true;
  n.left = -1;
  n.right = -1;
  set_majority(n);
}

std::int8_t DecisionTree::classify(const data::Record& r) const {
  std::int32_t id = root();
  while (!node(id).leaf) {
    id = node(id).split.goes_left(r) ? node(id).left : node(id).right;
  }
  return node(id).label;
}

double DecisionTree::accuracy(std::span<const data::Record> records) const {
  if (records.empty()) return 1.0;
  std::size_t correct = 0;
  for (const auto& r : records) {
    if (classify(r) == r.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(records.size());
}

std::size_t DecisionTree::leaf_count() const {
  std::size_t leaves = 0;
  std::function<void(std::int32_t)> walk = [&](std::int32_t id) {
    if (node(id).leaf) {
      ++leaves;
    } else {
      walk(node(id).left);
      walk(node(id).right);
    }
  };
  walk(root());
  return leaves;
}

std::int32_t DecisionTree::max_depth() const {
  std::int32_t deepest = 0;
  std::function<void(std::int32_t)> walk = [&](std::int32_t id) {
    deepest = std::max(deepest, node(id).depth);
    if (!node(id).leaf) {
      walk(node(id).left);
      walk(node(id).right);
    }
  };
  walk(root());
  return deepest;
}

std::size_t DecisionTree::live_count() const {
  std::size_t n = 0;
  std::function<void(std::int32_t)> walk = [&](std::int32_t id) {
    ++n;
    if (!node(id).leaf) {
      walk(node(id).left);
      walk(node(id).right);
    }
  };
  walk(root());
  return n;
}

// pdc: nonwire(bulk decoder: adopts the serialized arena wholesale after
//              structural validation; per-field reads live in
//              validate_arena, not in the codec itself)
DecisionTree DecisionTree::deserialize(std::vector<TreeNode> nodes) {
  validate_arena(nodes);
  DecisionTree t;
  if (!nodes.empty()) t.nodes_ = std::move(nodes);
  return t;
}

void DecisionTree::graft(std::int32_t at, const std::vector<TreeNode>& sub) {
  if (sub.empty()) return;
  if (!node(at).leaf) {
    throw std::logic_error("DecisionTree::graft: target must be a leaf");
  }
  const auto offset = static_cast<std::int32_t>(nodes_.size());
  const std::int32_t base_depth = node(at).depth;

  // Copy the subtree root onto the target leaf, children into the arena.
  auto rebase = [&](TreeNode n, std::int32_t depth_delta) {
    n.depth += depth_delta;
    if (!n.leaf) {
      // Child index 0 in `sub` is the root and never a child; the offset
      // maps sub-index i (>0) to arena index offset + i - 1.
      n.left += offset - 1;
      n.right += offset - 1;
    }
    return n;
  };

  const std::int32_t depth_delta = base_depth - sub[0].depth;
  nodes_[static_cast<std::size_t>(at)] = rebase(sub[0], depth_delta);
  for (std::size_t i = 1; i < sub.size(); ++i) {
    nodes_.push_back(rebase(sub[i], depth_delta));
  }
}

std::vector<TreeNode> DecisionTree::extract(std::int32_t at) const {
  // graft() expects: sub[0] is the root; an internal sub[i] has children at
  // sub-array indices left/right (>= 1).  Emit in preorder and patch child
  // links as we go.
  std::vector<TreeNode> out;
  std::function<std::int32_t(std::int32_t)> copy =
      [&](std::int32_t id) -> std::int32_t {
    const auto pos = static_cast<std::int32_t>(out.size());
    out.push_back(node(id));
    if (!node(id).leaf) {
      const auto l = copy(node(id).left);
      const auto r = copy(node(id).right);
      out[static_cast<std::size_t>(pos)].left = l;
      out[static_cast<std::size_t>(pos)].right = r;
    }
    return pos;
  };
  copy(at);
  return out;
}

std::string DecisionTree::to_string() const {
  std::ostringstream out;
  std::function<void(std::int32_t)> walk = [&](std::int32_t id) {
    const TreeNode& n = node(id);
    for (int d = 0; d < n.depth; ++d) out << "  ";
    if (n.leaf) {
      out << "leaf class=" << static_cast<int>(n.label) << " counts=[";
      for (int k = 0; k < data::kNumClasses; ++k) {
        out << (k ? "," : "") << n.counts[static_cast<std::size_t>(k)];
      }
      out << "]\n";
    } else {
      if (n.split.kind == Split::Kind::kNumeric) {
        out << data::kNumericNames[static_cast<std::size_t>(n.split.attr)]
            << " <= " << n.split.threshold << "\n";
      } else {
        out << data::kCatNames[static_cast<std::size_t>(n.split.attr)]
            << " in {";
        bool first = true;
        for (int v = 0;
             v < data::kCatCardinality[static_cast<std::size_t>(n.split.attr)];
             ++v) {
          if ((n.split.subset >> v) & 1u) {
            out << (first ? "" : ",") << v;
            first = false;
          }
        }
        out << "}\n";
      }
      walk(n.left);
      walk(n.right);
    }
  };
  walk(root());
  return out.str();
}

}  // namespace pdc::clouds
