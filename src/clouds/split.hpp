#pragma once

// A splitter point: the test stored at an internal tree node.  Numeric
// splits send `value <= threshold` left; categorical splits send values in
// the `subset` bitmask left.
//
// Split is trivially copyable so the winning splitter can be broadcast to
// all processors with one collective, exactly as the paper describes.

#include <cstdint>
#include <limits>

#include "data/record.hpp"

namespace pdc::clouds {

struct Split {
  enum class Kind : std::int8_t { kNumeric, kCategorical };

  Kind kind = Kind::kNumeric;
  std::int8_t attr = 0;     ///< numeric or categorical attribute index
  float threshold = 0.0f;   ///< numeric: left iff value <= threshold
  std::uint32_t subset = 0; ///< categorical: left iff bit `value` set

  bool goes_left(const data::Record& r) const {
    if (kind == Kind::kNumeric) {
      return r.num[static_cast<std::size_t>(attr)] <= threshold;
    }
    return (subset >> r.cat[static_cast<std::size_t>(attr)]) & 1u;
  }

  friend bool operator==(const Split&, const Split&) = default;
};

/// A candidate split with its weighted gini; `valid` is false when no
/// usable split exists (e.g. all attribute values identical).
struct SplitCandidate {
  double gini = std::numeric_limits<double>::infinity();
  Split split{};
  bool valid = false;

  /// Keep the better (lower-gini) candidate; ties keep *this (callers
  /// iterate attributes in a fixed order, making the choice deterministic).
  void consider(const SplitCandidate& other) {
    if (other.valid && (!valid || other.gini < gini)) *this = other;
  }

  void consider(double g, const Split& s) {
    if (!valid || g < gini) {
      gini = g;
      split = s;
      valid = true;
    }
  }
};

static_assert(std::is_trivially_copyable_v<SplitCandidate>);

/// Deterministic "is a better than b": lower gini wins; exact ties broken
/// by (kind, attr, threshold, subset) so every processor of a parallel
/// min-reduction picks the same winner.
inline bool candidate_less(const SplitCandidate& a, const SplitCandidate& b) {
  if (a.valid != b.valid) return a.valid;
  if (!a.valid) return false;
  if (a.gini != b.gini) return a.gini < b.gini;
  if (a.split.kind != b.split.kind) return a.split.kind < b.split.kind;
  if (a.split.attr != b.split.attr) return a.split.attr < b.split.attr;
  if (a.split.threshold != b.split.threshold) {
    return a.split.threshold < b.split.threshold;
  }
  return a.split.subset < b.split.subset;
}

}  // namespace pdc::clouds
