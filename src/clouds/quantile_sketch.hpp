#pragma once

// Mergeable epsilon-approximate quantile summary (a simplified KLL
// compactor stack) — an extension beyond the paper.
//
// CLOUDS derives its interval boundaries from a pre-drawn random sample S
// that must be partitioned alongside the data (and replicated, in
// pCLOUDS).  A mergeable quantile sketch removes both requirements: each
// rank sketches its local stream, sketches are merged with one global
// combine, and equi-depth boundaries fall out of the merged summary.  The
// sketch is deterministic (alternating compaction offsets instead of coin
// flips) so every rank derives identical boundaries from identical merge
// orders — the property all of pCLOUDS' replication logic rests on.
//
// Error: with per-level capacity k, the rank error is O(log(n/k)/k); the
// tests bound it empirically.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/wire.hpp"

namespace pdc::clouds {

class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t k = 256) : k_(std::max<std::size_t>(k, 8)) {}

  void add(float v) {
    if (levels_.empty()) levels_.emplace_back();
    levels_[0].push_back(v);
    ++count_;
    compact_from(0);
  }

  void merge(const QuantileSketch& other) {
    if (other.levels_.size() > levels_.size()) {
      levels_.resize(other.levels_.size());
    }
    for (std::size_t lvl = 0; lvl < other.levels_.size(); ++lvl) {
      levels_[lvl].insert(levels_[lvl].end(), other.levels_[lvl].begin(),
                          other.levels_[lvl].end());
    }
    count_ += other.count_;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) compact_from(lvl);
  }

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Approximate value of the phi-quantile (phi in [0, 1]).
  float quantile(double phi) const {
    const auto items = weighted_items();
    if (items.empty()) return 0.0f;
    const double target = phi * static_cast<double>(count_);
    double acc = 0.0;
    for (const auto& [v, w] : items) {
      acc += static_cast<double>(w);
      if (acc >= target) return v;
    }
    return items.back().first;
  }

  /// Equi-depth interior boundaries: up to q-1 ascending distinct values,
  /// interchangeable with equi_depth_boundaries() over a sample.
  std::vector<float> boundaries(int q) const {
    std::vector<float> out;
    if (q <= 1 || empty()) return out;
    const auto items = weighted_items();
    double acc = 0.0;
    std::size_t i = 0;
    for (int j = 1; j < q; ++j) {
      const double target =
          static_cast<double>(count_) * j / static_cast<double>(q);
      while (i < items.size() &&
             acc + static_cast<double>(items[i].second) < target) {
        acc += static_cast<double>(items[i].second);
        ++i;
      }
      if (i >= items.size()) break;
      const float b = items[i].first;
      if (out.empty() || b > out.back()) out.push_back(b);
    }
    return out;
  }

  /// Wire format: [k][count][nlevels][{size, values...} per level]
  /// [ncompactions][offsets...], u64 headers and raw float payloads.
  /// The compaction parities travel with the levels: a resumed sketch
  /// must continue the alternating-offset sequence where the original
  /// stopped, or the first post-resume compaction diverges from an
  /// uninterrupted run and the ranks stop agreeing on boundaries.
  std::vector<std::byte> serialize() const {
    std::vector<std::byte> out;
    append_u64(out, k_);
    append_u64(out, count_);
    append_u64(out, levels_.size());
    for (const auto& lvl : levels_) {
      append_u64(out, lvl.size());
      const auto* bytes = reinterpret_cast<const std::byte*>(lvl.data());  // pdc-lint: allow(PDC010) -- float payload onto the wire; layout documented above
      out.insert(out.end(), bytes, bytes + lvl.size() * sizeof(float));
    }
    append_u64(out, compactions_.size());
    for (const std::uint64_t c : compactions_) append_u64(out, c);
    return out;
  }

  /// Inverse of serialize(); advances `offset` past the consumed bytes.
  /// Throws pdc::WireError on truncated input or an implausible count.
  static QuantileSketch deserialize(std::span<const std::byte> bytes,
                                    std::size_t& offset) {
    QuantileSketch s;
    s.k_ = std::max<std::size_t>(take_u64(bytes, offset),
                                 std::size_t{8});
    s.count_ = take_u64(bytes, offset);
    const auto nlevels = take_u64(bytes, offset);
    // Each level costs at least its u64 size header, so a count beyond
    // the remaining bytes / 8 cannot be honest.
    if (nlevels > (bytes.size() - offset) / sizeof(std::uint64_t)) {
      throw WireError("QuantileSketch: implausible level count");
    }
    s.levels_.resize(nlevels);
    for (auto& lvl : s.levels_) {
      const auto n = take_u64(bytes, offset);
      if (n > (bytes.size() - offset) / sizeof(float)) {
        throw WireError("QuantileSketch: level overruns the buffer");
      }
      lvl.resize(n);
      std::memcpy(lvl.data(), bytes.data() + offset, n * sizeof(float));  // pdc-lint: allow(PDC010) -- float payload off the wire; n bounds-checked above
      offset += n * sizeof(float);
    }
    const auto ncomp = take_u64(bytes, offset);
    if (ncomp > (bytes.size() - offset) / sizeof(std::uint64_t)) {
      throw WireError("QuantileSketch: compaction list overruns buffer");
    }
    s.compactions_.resize(ncomp);
    for (auto& c : s.compactions_) c = take_u64(bytes, offset);
    return s;
  }

 private:
  void compact_from(std::size_t start) {
    for (std::size_t lvl = start; lvl < levels_.size(); ++lvl) {
      if (levels_[lvl].size() < capacity_of(lvl)) break;
      // Grow the stack BEFORE taking references: emplace_back may
      // reallocate the outer vector.
      if (lvl + 1 >= levels_.size()) levels_.emplace_back();
      auto& buf = levels_[lvl];
      auto& up = levels_[lvl + 1];
      std::sort(buf.begin(), buf.end());
      // Deterministic alternating offset replaces KLL's random coin; it
      // keeps the summary unbiased over repeated compactions while making
      // merges reproducible across ranks.
      if (compactions_.size() <= lvl) compactions_.resize(lvl + 1, 0);
      const std::size_t offset = compactions_[lvl]++ & 1u;
      for (std::size_t i = offset; i < buf.size(); i += 2) {
        up.push_back(buf[i]);
      }
      buf.clear();
    }
  }

  /// Uniform per-level capacity.  With H = log2(n/k) levels the
  /// deterministic-compaction rank error is bounded by ~H/(2k) of n; the
  /// O(k log(n/k)) memory is irrelevant at the scales this library runs.
  /// (KLL's geometrically decaying capacities save memory at the cost of a
  /// randomized analysis; determinism matters more here — see the header
  /// comment.)
  std::size_t capacity_of(std::size_t) const { return k_; }

  std::vector<std::pair<float, std::uint64_t>> weighted_items() const {
    std::vector<std::pair<float, std::uint64_t>> items;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      const std::uint64_t w = 1ull << lvl;
      for (const float v : levels_[lvl]) items.emplace_back(v, w);
    }
    std::sort(items.begin(), items.end());
    return items;
  }

  static void append_u64(std::vector<std::byte>& out, std::uint64_t v) {
    const auto* bytes = reinterpret_cast<const std::byte*>(&v);  // pdc-lint: allow(PDC010) -- u64 header onto the wire, native endianness by contract
    out.insert(out.end(), bytes, bytes + sizeof(v));
  }

  static std::uint64_t take_u64(std::span<const std::byte> bytes,
                                std::size_t& offset) {
    std::uint64_t v;
    if (offset > bytes.size() || bytes.size() - offset < sizeof(v)) {
      throw WireError("QuantileSketch: truncated header read");
    }
    std::memcpy(&v, bytes.data() + offset, sizeof(v));  // pdc-lint: allow(PDC010) -- u64 header off the wire; bounds-checked above
    offset += sizeof(v);
    return v;
  }

  std::size_t k_;
  std::uint64_t count_ = 0;
  std::vector<std::vector<float>> levels_;
  std::vector<std::uint64_t> compactions_;
};

}  // namespace pdc::clouds
