#pragma once

// Uniform access to a node's records, in-core or out-of-core.
//
// Split derivation makes one (SS) or two (SSE) sequential passes over the
// node's data; RecordSource hides whether those passes stream from the
// rank's local disk (large nodes, the out-of-core regime) or iterate an
// in-memory vector (small nodes).

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "data/record.hpp"
#include "io/local_disk.hpp"
#include "io/pipeline.hpp"

namespace pdc::clouds {

using RecordFn = std::function<void(const data::Record&)>;

class RecordSource {
 public:
  virtual ~RecordSource() = default;
  /// One full sequential pass; calls `fn` for every record.
  virtual void scan(const RecordFn& fn) = 0;
  virtual std::uint64_t count() const = 0;
};

class MemorySource final : public RecordSource {
 public:
  explicit MemorySource(std::span<const data::Record> records)
      : records_(records) {}

  void scan(const RecordFn& fn) override {
    for (const auto& r : records_) fn(r);
  }

  std::uint64_t count() const override { return records_.size(); }

 private:
  std::span<const data::Record> records_;
};

class DiskSource final : public RecordSource {
 public:
  DiskSource(io::LocalDisk& disk, std::string name, std::size_t block_records,
             io::PipelineConfig pipeline = {})
      : disk_(&disk),
        name_(std::move(name)),
        block_records_(block_records),
        pipeline_(pipeline) {}

  void scan(const RecordFn& fn) override {
    io::BlockReader<data::Record> reader(*disk_, name_, block_records_,
                                         pipeline_);
    std::vector<data::Record> block;
    while (reader.next_block(block)) {
      for (const auto& r : block) fn(r);
    }
  }

  std::uint64_t count() const override {
    return disk_->file_records<data::Record>(name_);
  }

 private:
  io::LocalDisk* disk_;
  std::string name_;
  std::size_t block_records_;
  io::PipelineConfig pipeline_;
};

}  // namespace pdc::clouds
