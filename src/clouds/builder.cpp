#include "clouds/builder.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "obs/mem_gauge.hpp"

namespace pdc::clouds {

namespace {

data::ClassCounts count_classes(std::span<const data::Record> records) {
  data::ClassCounts c{};
  for (const auto& r : records) ++c[static_cast<std::size_t>(r.label)];
  return c;
}

std::vector<data::Record> every_kth(std::span<const data::Record> data,
                                    double rate) {
  std::vector<data::Record> out;
  if (data.empty() || rate <= 0.0) return out;
  const auto stride =
      std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / rate));
  for (std::size_t i = 0; i < data.size(); i += stride) out.push_back(data[i]);
  return out;
}

}  // namespace

bool stop_expansion(const CloudsConfig& cfg, const data::ClassCounts& counts,
                    std::int32_t depth) {
  const auto n = data::total(counts);
  if (n < cfg.min_records) return true;
  if (depth >= cfg.max_depth) return true;
  std::int64_t max_class = 0;
  for (auto c : counts) max_class = std::max(max_class, c);
  return static_cast<double>(max_class) >=
         cfg.purity_stop * static_cast<double>(n);
}

bool CloudsBuilder::should_stop(const data::ClassCounts& counts,
                                std::int32_t depth) const {
  return stop_expansion(cfg_, counts, depth);
}

SplitCandidate CloudsBuilder::derive_split(
    RecordSource& source, std::span<const data::Record> sample,
    std::span<const data::Record> records_if_memory,
    std::uint64_t node_records, std::uint64_t root_records) {
  if (cfg_.method == SplitMethod::kDirect) {
    if (records_if_memory.empty()) {
      throw std::logic_error(
          "CloudsBuilder: direct method requires in-memory records");
    }
    stats_.records_scanned += node_records;
    return direct_split(records_if_memory, hooks_);
  }

  const int q = cfg_.q_for(node_records, root_records);
  NodeStats stats = NodeStats::with_boundaries(sample, q);
  collect_stats(source, stats, hooks_);
  stats_.records_scanned += node_records;

  if (cfg_.method == SplitMethod::kSS) {
    return ss_split(stats, hooks_);
  }
  SseDiag diag;
  auto best = sse_split(stats, source, hooks_, &diag);
  if (stats_.survival_samples == 0) stats_.root_survival = diag.survival;
  stats_.survival_sum += diag.survival;
  ++stats_.survival_samples;
  stats_.second_pass_points += diag.second_pass_points;
  if (diag.alive_intervals > 0) stats_.records_scanned += node_records;
  return best;
}

void CloudsBuilder::build_subtree_in_core(DecisionTree& tree, InCoreTask task,
                                          std::uint64_t root_records) {
  std::deque<InCoreTask> queue;
  queue.push_back(std::move(task));
  while (!queue.empty()) {
    InCoreTask t = std::move(queue.front());
    queue.pop_front();
    ++stats_.nodes_processed;
    ++stats_.in_core_nodes;

    const auto counts = tree.node(t.node).counts;
    if (should_stop(counts, t.depth)) {
      ++stats_.leaves;
      continue;
    }

    MemorySource source(t.data);
    const auto best =
        derive_split(source, t.sample, t.data, t.data.size(), root_records);
    // Require an actual partition: both sides non-empty.
    if (!best.valid) {
      ++stats_.leaves;
      continue;
    }

    InCoreTask left;
    InCoreTask right;
    for (const auto& r : t.data) {
      (best.split.goes_left(r) ? left.data : right.data).push_back(r);
    }
    hooks_.charge_scan(t.data.size());
    if (left.data.empty() || right.data.empty()) {
      ++stats_.leaves;
      continue;
    }
    for (const auto& r : t.sample) {
      (best.split.goes_left(r) ? left.sample : right.sample).push_back(r);
    }

    const auto [lid, rid] = tree.grow(t.node, best.split,
                                      count_classes(left.data),
                                      count_classes(right.data));
    left.node = lid;
    right.node = rid;
    left.depth = right.depth = t.depth + 1;
    queue.push_back(std::move(left));
    queue.push_back(std::move(right));
  }
}

DecisionTree CloudsBuilder::build(std::span<const data::Record> data,
                                  std::span<const data::Record> sample) {
  stats_ = BuildStats{};
  std::vector<data::Record> own_sample;
  if (sample.empty()) {
    own_sample = every_kth(data, cfg_.sample_rate);
    sample = own_sample;
  }
  DecisionTree tree(count_classes(data));
  InCoreTask root;
  root.node = tree.root();
  root.data.assign(data.begin(), data.end());
  root.sample.assign(sample.begin(), sample.end());
  root.depth = 0;
  build_subtree_in_core(tree, std::move(root), data.size());
  return tree;
}

DecisionTree CloudsBuilder::build_out_of_core(io::LocalDisk& disk,
                                              const std::string& file,
                                              std::vector<data::Record> sample,
                                              const io::MemoryBudget& budget) {
  stats_ = BuildStats{};
  // The pre-drawn sample is the build's one dataset-independent resident
  // buffer: charge it for the whole run (children inherit slices of it, so
  // the root size is the bound).
  obs::MemCharge sample_mem(hooks_.mem,
                            sample.size() * sizeof(data::Record));
  const std::uint64_t root_records = disk.file_records<data::Record>(file);
  const std::size_t block =
      budget.block_records(sizeof(data::Record), /*streams=*/3);

  struct DiskTask {
    std::int32_t node;
    std::string file;
    std::vector<data::Record> sample;
    std::int32_t depth;
    data::ClassCounts counts;
  };

  // Root class counts need one cheap pass (later nodes inherit counts from
  // the parent's partitioning step).
  data::ClassCounts root_counts{};
  {
    DiskSource src(disk, file, block, cfg_.pipeline);
    src.scan([&](const data::Record& r) {
      ++root_counts[static_cast<std::size_t>(r.label)];
      hooks_.charge_scan(1);
    });
  }

  DecisionTree tree(root_counts);
  std::deque<DiskTask> queue;
  queue.push_back({tree.root(), file, std::move(sample), 0, root_counts});
  std::uint64_t next_file_id = 0;

  while (!queue.empty()) {
    DiskTask t = std::move(queue.front());
    queue.pop_front();
    const std::uint64_t n = disk.file_records<data::Record>(t.file);

    if (should_stop(t.counts, t.depth)) {
      ++stats_.nodes_processed;
      ++stats_.leaves;
      if (t.file != file) disk.remove(t.file);
      continue;
    }

    if (budget.fits(n, sizeof(data::Record))) {
      // Small node: load and finish the whole subtree in memory.  The
      // buffer is budget-bounded by the fits() guard; charge it while it
      // lives.
      obs::MemCharge load_mem(hooks_.mem, n * sizeof(data::Record));
      InCoreTask mem;
      mem.node = t.node;
      mem.data = disk.read_file<data::Record>(t.file);
      mem.sample = std::move(t.sample);
      mem.depth = t.depth;
      if (t.file != file) disk.remove(t.file);
      build_subtree_in_core(tree, std::move(mem), root_records);
      continue;
    }

    ++stats_.nodes_processed;
    ++stats_.out_of_core_nodes;

    DiskSource source(disk, t.file, block, cfg_.pipeline);
    const auto best =
        derive_split(source, t.sample, {}, n, root_records);
    if (!best.valid) {
      ++stats_.leaves;
      if (t.file != file) disk.remove(t.file);
      continue;
    }

    // Partition: stream the node's records into the children's files and
    // count their classes in the same pass (the paper folds the children's
    // statistics updates into this pass to save a separate scan).
    auto part_span = hooks_.span("partition-pass", "clouds", n);
    const std::string lfile = "node_" + std::to_string(next_file_id++);
    const std::string rfile = "node_" + std::to_string(next_file_id++);
    data::ClassCounts lcounts{};
    data::ClassCounts rcounts{};
    {
      io::BlockWriter<data::Record> lw(disk, lfile, block, cfg_.pipeline);
      io::BlockWriter<data::Record> rw(disk, rfile, block, cfg_.pipeline);
      DiskSource reread(disk, t.file, block, cfg_.pipeline);
      reread.scan([&](const data::Record& r) {
        if (best.split.goes_left(r)) {
          lw.append(r);
          ++lcounts[static_cast<std::size_t>(r.label)];
        } else {
          rw.append(r);
          ++rcounts[static_cast<std::size_t>(r.label)];
        }
        hooks_.charge_scan(1);
      });
      stats_.records_scanned += n;
      lw.close();
      rw.close();
    }
    part_span.close();
    if (t.file != file) disk.remove(t.file);

    if (data::total(lcounts) == 0 || data::total(rcounts) == 0) {
      disk.remove(lfile);
      disk.remove(rfile);
      ++stats_.leaves;
      continue;
    }

    DiskTask left;
    DiskTask right;
    for (const auto& r : t.sample) {
      (best.split.goes_left(r) ? left.sample : right.sample).push_back(r);
    }
    const auto [lid, rid] = tree.grow(t.node, best.split, lcounts, rcounts);
    left.node = lid;
    left.file = lfile;
    left.depth = t.depth + 1;
    left.counts = lcounts;
    right.node = rid;
    right.file = rfile;
    right.depth = t.depth + 1;
    right.counts = rcounts;
    queue.push_back(std::move(left));
    queue.push_back(std::move(right));
  }
  return tree;
}

}  // namespace pdc::clouds
