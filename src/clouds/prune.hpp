#pragma once

// MDL-based pruning (the paper prunes with a minimum-description-length
// algorithm, executed in memory after construction; its cost is negligible
// next to construction, which is why only construction is parallelized).
//
// Two-part code, bottom-up:
//   cost(leaf)    = 1 structure bit + n*H(class distribution) +
//                   ((#classes - 1)/2) * log2(n)   [parameter cost]
//   cost(subtree) = 1 structure bit + L(split) + cost(left) + cost(right)
//   L(split)      = log2(#attributes) + value-encoding bits
// A subtree is collapsed into a leaf whenever the leaf code is no longer
// than the subtree code.

#include <cstdint>

#include "clouds/tree.hpp"

namespace pdc::clouds {

struct PruneConfig {
  /// Bits to encode a numeric threshold / categorical subset.  Larger
  /// values prune more aggressively.
  double split_value_bits = 16.0;
};

struct PruneStats {
  std::size_t nodes_before = 0;
  std::size_t nodes_after = 0;
  std::size_t collapsed = 0;
};

/// Encoding cost of the records at a node if it becomes a leaf.
double mdl_leaf_cost(const data::ClassCounts& counts);

/// Prunes `tree` in place; returns statistics.
PruneStats mdl_prune(DecisionTree& tree, const PruneConfig& cfg = {});

}  // namespace pdc::clouds
