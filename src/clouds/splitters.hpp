#pragma once

// Split derivation at a tree node: the SS method, the SSE method (gini
// lower bounds -> alive intervals -> exact re-evaluation) and the direct
// method (full sort, every point evaluated) used for small in-memory nodes
// and as the quality baseline.
//
// All three consume a NodeStats built by collect_stats() in one sequential
// pass over the node's data; SSE makes one further pass to gather the
// points of alive intervals.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "clouds/categorical.hpp"
#include "clouds/cost_hooks.hpp"
#include "clouds/intervals.hpp"
#include "clouds/record_source.hpp"
#include "clouds/split.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

/// Everything one pass over a node's data yields: interval class-frequency
/// histograms for every numeric attribute, count matrices for every
/// categorical attribute, and the node's class counts.
struct NodeStats {
  std::vector<IntervalHist> hists;  ///< size kNumNumeric
  std::vector<CountMatrix> cats;    ///< size kNumCategorical
  data::ClassCounts counts{};

  /// Zeroed stats with boundaries built from the node's sample.
  static NodeStats with_boundaries(std::span<const data::Record> sample,
                                   int q);

  void add(const data::Record& r);
};

/// One pass over `source`, filling `stats` (whose boundaries must already be
/// set).  This is the paper's "evaluation of interval boundaries" data scan.
void collect_stats(RecordSource& source, NodeStats& stats,
                   const CostHooks& hooks);

/// Best split among the interval boundaries of one numeric attribute.
SplitCandidate evaluate_boundaries(const IntervalHist& hist, int attr,
                                   const CostHooks& hooks);

/// Best split among all boundary points and all categorical splits — the
/// full SS method decision given collected stats (gini_min in the paper).
SplitCandidate ss_split(const NodeStats& stats, const CostHooks& hooks);

/// An interval whose gini lower bound beats gini_min, queued for exact
/// re-evaluation.
struct AliveInterval {
  int attr = 0;
  std::size_t interval = 0;
  float lo = 0.0f;               ///< exclusive; -inf encoded by lowest float
  float hi = 0.0f;               ///< inclusive; +inf encoded by highest float
  bool unbounded_lo = false;
  bool unbounded_hi = false;
  data::ClassCounts before{};    ///< counts strictly left of the interval
  data::ClassCounts inside{};
  data::ClassCounts after{};
  double gini_est = 0.0;

  bool contains(float v) const {
    const bool above = unbounded_lo || v > lo;
    const bool below = unbounded_hi || v <= hi;
    return above && below;
  }
};

/// Determine the alive intervals of every numeric attribute given the
/// current global minimum gini.
std::vector<AliveInterval> find_alive_intervals(const NodeStats& stats,
                                                double gini_min,
                                                const CostHooks& hooks);

/// Ratio of points inside alive intervals to the node size — the paper's
/// "survival ratio", the knob that drives SSE's second-pass I/O volume.
double survival_ratio(std::span<const AliveInterval> alive,
                      const data::ClassCounts& node_counts);

/// A (value, label) point harvested from an alive interval.
struct AlivePoint {
  float value;
  std::int8_t label;
};

/// Exact evaluation of one alive interval given its harvested points:
/// sorts them and computes gini at every distinct value.
SplitCandidate evaluate_alive_interval(const AliveInterval& iv,
                                       std::vector<AlivePoint> points,
                                       const CostHooks& hooks);

/// Diagnostics from an SSE split derivation.
struct SseDiag {
  double gini_boundary = 0.0;  ///< best gini among boundaries/categoricals
  double gini_final = 0.0;
  std::size_t alive_intervals = 0;
  double survival = 0.0;       ///< fraction of points requiring the 2nd pass
  std::uint64_t second_pass_points = 0;
};

/// The full sequential SSE method: boundary evaluation, aliveness, one
/// extra pass over `source` to harvest alive points, exact re-evaluation.
SplitCandidate sse_split(const NodeStats& stats, RecordSource& source,
                         const CostHooks& hooks, SseDiag* diag = nullptr);

/// Direct method: sort every numeric attribute and evaluate gini at every
/// distinct point; categorical attributes from the count matrices.  Used
/// in-memory for small nodes and as the quality reference.
SplitCandidate direct_split(std::span<const data::Record> records,
                            const CostHooks& hooks);

}  // namespace pdc::clouds
