#pragma once

// Classifier quality metrics used by the examples and the experiment
// harness: accuracy, per-class confusion counts and tree compactness.

#include <array>
#include <cstdint>
#include <span>

#include "clouds/tree.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

struct Confusion {
  /// cell[actual][predicted]
  std::array<std::array<std::int64_t, data::kNumClasses>, data::kNumClasses>
      cell{};

  std::int64_t total() const {
    std::int64_t t = 0;
    for (const auto& row : cell) {
      for (auto v : row) t += v;
    }
    return t;
  }

  std::int64_t correct() const {
    std::int64_t t = 0;
    for (int k = 0; k < data::kNumClasses; ++k) {
      t += cell[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)];
    }
    return t;
  }

  double accuracy() const {
    const auto n = total();
    return n == 0 ? 1.0
                  : static_cast<double>(correct()) / static_cast<double>(n);
  }
};

inline Confusion evaluate(const DecisionTree& tree,
                          std::span<const data::Record> test) {
  Confusion c;
  for (const auto& r : test) {
    const auto predicted = tree.classify(r);
    ++c.cell[static_cast<std::size_t>(r.label)]
            [static_cast<std::size_t>(predicted)];
  }
  return c;
}

struct TreeShape {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::int32_t depth = 0;
};

inline TreeShape shape_of(const DecisionTree& tree) {
  return {tree.live_count(), tree.leaf_count(), tree.max_depth()};
}

}  // namespace pdc::clouds
