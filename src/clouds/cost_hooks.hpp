#pragma once

// Optional modeled-compute accounting for the CLOUDS kernels.
//
// The sequential classifier is usable standalone (null clock: hooks no-op);
// inside the SPMD runtime each rank passes its Clock so split derivation,
// sorting and partitioning advance the modeled timeline with the Machine's
// per-operation costs.

#include <cmath>
#include <cstdint>
#include <string_view>

#include "mp/clock.hpp"
#include "mp/machine.hpp"
#include "obs/mem_gauge.hpp"
#include "obs/trace.hpp"

namespace pdc::clouds {

struct CostHooks {
  mp::Clock* clock = nullptr;
  mp::Machine machine{};
  /// Optional per-rank trace handle (null/no-op by default): the kernels
  /// open spans on the modeled timeline through it.
  obs::RankTracer tracer{};
  /// Optional resident-bytes gauge: the annotated in-core zones charge the
  /// bytes they hold so a sizeup run can check the out-of-core contract at
  /// runtime (the static analyzer's PDA200 proves it at compile time).
  obs::MemGauge* mem = nullptr;

  /// Opens a span on the modeled timeline (no-op with a null tracer).
  obs::SpanGuard span(std::string_view name, std::string_view cat,
                      std::uint64_t n = obs::kNoArg) const {
    return obs::SpanGuard(tracer, name, cat, obs::kNoArg, n);
  }

  /// One streaming pass touching `record_attrs` record-attribute pairs.
  void charge_scan(std::uint64_t record_attrs) const {
    if (clock) {
      clock->add_compute(machine.cpu_scan_op *
                         static_cast<double>(record_attrs));
    }
  }

  /// `evals` gini evaluations at candidate points.
  void charge_gini(std::uint64_t evals) const {
    if (clock) {
      clock->add_compute(machine.cpu_gini_op * static_cast<double>(evals));
    }
    tracer.count("clouds.gini_evals", evals);
  }

  /// Comparison-sort of `n` keys.
  void charge_sort(std::uint64_t n) const {
    if (clock && n > 1) {
      const double dn = static_cast<double>(n);
      clock->add_compute(machine.cpu_cmp_op * dn * std::log2(dn));
    }
  }

  /// Moving `bytes` through memory (e.g. partitioning buffers).
  void charge_bytes(std::uint64_t bytes) const {
    if (clock) {
      clock->add_compute(machine.cpu_byte_op * static_cast<double>(bytes));
    }
  }

  /// Resident bytes entering an annotated in-core zone (no-op without a
  /// gauge).  Pair with release_mem, or hold an obs::MemCharge.
  void charge_mem(std::size_t bytes) const {
    if (mem) mem->charge(bytes);
  }

  void release_mem(std::size_t bytes) const {
    if (mem) mem->release(bytes);
  }
};

}  // namespace pdc::clouds
