#include "clouds/splitters.hpp"

#include <algorithm>
#include <limits>

#include "clouds/estimate.hpp"
#include "obs/mem_gauge.hpp"

namespace pdc::clouds {

NodeStats NodeStats::with_boundaries(std::span<const data::Record> sample,
                                     int q) {
  NodeStats stats;
  stats.hists = build_interval_hists(sample, q);
  stats.cats = make_count_matrices();
  return stats;
}

void NodeStats::add(const data::Record& r) {
  for (int a = 0; a < data::kNumNumeric; ++a) {
    hists[static_cast<std::size_t>(a)].add(r.num[static_cast<std::size_t>(a)],
                                           r.label);
  }
  for (auto& m : cats) m.add(r);
  ++counts[static_cast<std::size_t>(r.label)];
}

void collect_stats(RecordSource& source, NodeStats& stats,
                   const CostHooks& hooks) {
  auto sp = hooks.span("histogram-build", "clouds");
  // Per-record charging (not one bulk charge after the pass) so compute
  // accrues between block reaps — what the async pipeline hides I/O under.
  source.scan([&](const data::Record& r) {
    stats.add(r);
    hooks.charge_scan(static_cast<std::uint64_t>(data::kNumAttributes));
  });
  sp.set_n(source.count());
}

SplitCandidate evaluate_boundaries(const IntervalHist& hist, int attr,
                                   const CostHooks& hooks) {
  SplitCandidate best;
  const auto prefix = hist.prefix_counts();
  const auto total = hist.total_counts();
  for (std::size_t j = 0; j < hist.bounds.size(); ++j) {
    const auto& left = prefix[j];
    const auto right = total - left;
    if (data::total(left) == 0 || data::total(right) == 0) continue;
    Split s;
    s.kind = Split::Kind::kNumeric;
    s.attr = static_cast<std::int8_t>(attr);
    s.threshold = hist.bounds[j];
    best.consider(split_gini(left, right), s);
  }
  hooks.charge_gini(hist.bounds.size());
  return best;
}

SplitCandidate ss_split(const NodeStats& stats, const CostHooks& hooks) {
  auto sp = hooks.span("gini-evaluation", "clouds");
  SplitCandidate best;
  for (int a = 0; a < data::kNumNumeric; ++a) {
    best.consider(
        evaluate_boundaries(stats.hists[static_cast<std::size_t>(a)], a,
                            hooks));
  }
  for (const auto& m : stats.cats) {
    best.consider(best_categorical_split(m));
    hooks.charge_gini(m.counts.size() * m.counts.size());
  }
  return best;
}

std::vector<AliveInterval> find_alive_intervals(const NodeStats& stats,
                                                double gini_min,
                                                const CostHooks& hooks) {
  std::vector<AliveInterval> alive;
  for (int a = 0; a < data::kNumNumeric; ++a) {
    const auto& hist = stats.hists[static_cast<std::size_t>(a)];
    const auto total = hist.total_counts();
    data::ClassCounts before{};
    for (std::size_t j = 0; j < hist.interval_count(); ++j) {
      const auto& inside = hist.freq[j];
      const auto after = total - before - inside;
      // Intervals with <= 1 point cannot contain a split strictly better
      // than its boundaries.
      if (data::total(inside) > 1) {
        const double est = gini_lower_bound(before, inside, after);
        if (est < gini_min) {
          AliveInterval iv;
          iv.attr = a;
          iv.interval = j;
          iv.unbounded_lo = (j == 0);
          iv.unbounded_hi = (j == hist.bounds.size());
          iv.lo = iv.unbounded_lo ? std::numeric_limits<float>::lowest()
                                  : hist.bounds[j - 1];
          iv.hi = iv.unbounded_hi ? std::numeric_limits<float>::max()
                                  : hist.bounds[j];
          iv.before = before;
          iv.inside = inside;
          iv.after = after;
          iv.gini_est = est;
          alive.push_back(iv);
        }
      }
      before += inside;
    }
    hooks.charge_gini(hist.interval_count() * (1u << data::kNumClasses));
  }
  return alive;
}

double survival_ratio(std::span<const AliveInterval> alive,
                      const data::ClassCounts& node_counts) {
  const double n = static_cast<double>(data::total(node_counts));
  if (n <= 0.0) return 0.0;
  double inside = 0.0;
  for (const auto& iv : alive) {
    inside += static_cast<double>(data::total(iv.inside));
  }
  return inside / n;
}

SplitCandidate evaluate_alive_interval(const AliveInterval& iv,
                                       std::vector<AlivePoint> points,
                                       const CostHooks& hooks) {
  SplitCandidate best;
  if (points.empty()) return best;
  std::sort(points.begin(), points.end(),
            [](const AlivePoint& a, const AlivePoint& b) {
              return a.value < b.value;
            });
  hooks.charge_sort(points.size());

  const data::ClassCounts node_total = [&] {
    data::ClassCounts t = iv.before;
    t += iv.inside;
    t += iv.after;
    return t;
  }();

  data::ClassCounts left = iv.before;
  std::size_t i = 0;
  while (i < points.size()) {
    const float v = points[i].value;
    while (i < points.size() && points[i].value == v) {
      ++left[static_cast<std::size_t>(points[i].label)];
      ++i;
    }
    const auto right = node_total - left;
    if (data::total(right) == 0) break;  // split at max value: useless
    Split s;
    s.kind = Split::Kind::kNumeric;
    s.attr = static_cast<std::int8_t>(iv.attr);
    s.threshold = v;
    best.consider(split_gini(left, right), s);
  }
  hooks.charge_gini(points.size());
  return best;
}

SplitCandidate sse_split(const NodeStats& stats, RecordSource& source,
                         const CostHooks& hooks, SseDiag* diag) {
  SplitCandidate best = ss_split(stats, hooks);
  const double gini_boundary = best.valid
                                   ? best.gini
                                   : std::numeric_limits<double>::infinity();
  auto alive = find_alive_intervals(stats, gini_boundary, hooks);

  std::uint64_t harvested = 0;
  if (!alive.empty()) {
    auto sp = hooks.span("alive-evaluation", "clouds", alive.size());
    // Second pass: harvest the points that fall inside alive intervals.
    obs::MemCharge harvest_mem(hooks.mem, 0);
    std::vector<std::vector<AlivePoint>> buckets(alive.size());
    source.scan([&](const data::Record& r) {
      for (std::size_t k = 0; k < alive.size(); ++k) {
        const float v =
            r.num[static_cast<std::size_t>(alive[k].attr)];
        if (alive[k].contains(v)) {
          // pdc: incore(alive point harvest: survival-bounded, one bucket per interval, freed after evaluation)
          buckets[k].push_back({v, r.label});
          harvest_mem.add(sizeof(AlivePoint));
          ++harvested;
        }
      }
      hooks.charge_scan(alive.size());
    });

    for (std::size_t k = 0; k < alive.size(); ++k) {
      best.consider(
          evaluate_alive_interval(alive[k], std::move(buckets[k]), hooks));
    }
  }

  if (diag) {
    diag->gini_boundary = gini_boundary;
    diag->gini_final = best.gini;
    diag->alive_intervals = alive.size();
    diag->survival = survival_ratio(alive, stats.counts);
    diag->second_pass_points = harvested;
  }
  return best;
}

SplitCandidate direct_split(std::span<const data::Record> records,
                            const CostHooks& hooks) {
  SplitCandidate best;
  if (records.empty()) return best;

  data::ClassCounts total{};
  for (const auto& r : records) {
    ++total[static_cast<std::size_t>(r.label)];
  }

  std::vector<AlivePoint> column(records.size());
  for (int a = 0; a < data::kNumNumeric; ++a) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      column[i] = {records[i].num[static_cast<std::size_t>(a)],
                   records[i].label};
    }
    std::sort(column.begin(), column.end(),
              [](const AlivePoint& x, const AlivePoint& y) {
                return x.value < y.value;
              });
    hooks.charge_sort(column.size());

    data::ClassCounts left{};
    std::size_t i = 0;
    while (i < column.size()) {
      const float v = column[i].value;
      while (i < column.size() && column[i].value == v) {
        ++left[static_cast<std::size_t>(column[i].label)];
        ++i;
      }
      if (i == column.size()) break;  // all records left: useless split
      Split s;
      s.kind = Split::Kind::kNumeric;
      s.attr = static_cast<std::int8_t>(a);
      s.threshold = v;
      best.consider(split_gini(left, total - left), s);
    }
    hooks.charge_gini(column.size());
  }

  auto cats = make_count_matrices();
  for (const auto& r : records) {
    for (auto& m : cats) m.add(r);
  }
  hooks.charge_scan(records.size() *
                    static_cast<std::uint64_t>(data::kNumCategorical));
  for (const auto& m : cats) {
    best.consider(best_categorical_split(m));
    hooks.charge_gini(m.counts.size() * m.counts.size());
  }
  return best;
}

}  // namespace pdc::clouds
