#pragma once

// The decision tree produced by CLOUDS / pCLOUDS: a binary class
// discriminator whose internal nodes carry splitter points and whose leaves
// carry the dominant class of their partition.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "clouds/split.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

struct TreeNode {
  bool leaf = true;
  std::int8_t label = 0;          ///< majority class (meaningful everywhere)
  data::ClassCounts counts{};     ///< class frequencies of the partition
  Split split{};                  ///< valid iff !leaf
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t depth = 0;
};

class DecisionTree {
 public:
  /// Creates a tree with a single root leaf.
  explicit DecisionTree(const data::ClassCounts& root_counts = {});

  std::int32_t root() const { return 0; }
  const TreeNode& node(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  TreeNode& node(std::int32_t id) { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t node_count() const { return nodes_.size(); }

  /// Turns leaf `id` into an internal node with two fresh leaf children;
  /// returns {left_id, right_id}.
  std::pair<std::int32_t, std::int32_t> grow(std::int32_t id,
                                             const Split& split,
                                             const data::ClassCounts& left,
                                             const data::ClassCounts& right);

  /// Collapses the subtree under `id` back into a leaf (used by pruning).
  void collapse(std::int32_t id);

  std::int8_t classify(const data::Record& r) const;

  /// Fraction of records whose label the tree predicts correctly.
  double accuracy(std::span<const data::Record> records) const;

  std::size_t leaf_count() const;
  std::size_t internal_count() const { return live_count() - leaf_count(); }
  std::int32_t max_depth() const;

  /// Nodes reachable from the root (collapse leaves orphans in the arena).
  std::size_t live_count() const;

  /// Human-readable dump, for examples and debugging.
  std::string to_string() const;

  /// Flat serialization of the whole node arena (TreeNode is trivially
  /// copyable, so subtrees can be shipped through the message-passing layer
  /// or stored on disk verbatim).  Struct padding is scrubbed to zero so
  /// the bytes — and everything derived from them: saved models,
  /// checkpoint blobs and their checksums — are deterministic.
  std::vector<TreeNode> serialize() const {
    std::vector<TreeNode> out(nodes_.size());
    if (out.empty()) return out;
    std::memset(static_cast<void*>(out.data()), 0,
                out.size() * sizeof(TreeNode));
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const TreeNode& n = nodes_[i];
      TreeNode& c = out[i];
      c.leaf = n.leaf;
      c.label = n.label;
      c.counts = n.counts;
      c.split.kind = n.split.kind;
      c.split.attr = n.split.attr;
      c.split.threshold = n.split.threshold;
      c.split.subset = n.split.subset;
      c.left = n.left;
      c.right = n.right;
      c.depth = n.depth;
    }
    return out;
  }
  static DecisionTree deserialize(std::vector<TreeNode> nodes);

  /// Replaces leaf `at` with the (serialized) subtree rooted at `sub[0]`.
  /// Used by pCLOUDS to graft the owner-built subtree of a small node into
  /// the replicated tree.  Depths are rebased onto `at`'s depth.
  void graft(std::int32_t at, const std::vector<TreeNode>& sub);

  /// Serializes the subtree rooted at `at` in the same layout graft()
  /// consumes: element 0 is the subtree root, children re-indexed into the
  /// compact array.  Used when a processor group hands its finished branch
  /// back to the rest of the machine.
  std::vector<TreeNode> extract(std::int32_t at) const;

 private:
  void set_majority(TreeNode& n);

  std::vector<TreeNode> nodes_;
};

static_assert(std::is_trivially_copyable_v<TreeNode>);

}  // namespace pdc::clouds
