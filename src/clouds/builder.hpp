#pragma once

// Sequential CLOUDS: decision tree construction, in-core and out-of-core.
//
// The out-of-core build is the p=1 instance of the paper's framework: node
// data lives in per-node files on the local disk, each node is processed by
// streaming passes (one for SS, up to two for SSE), and partitioning
// streams the node's records into its children's files while updating the
// children's statistics on the fly.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "clouds/cost_hooks.hpp"
#include "clouds/splitters.hpp"
#include "clouds/tree.hpp"
#include "data/record.hpp"
#include "io/local_disk.hpp"
#include "io/memory_budget.hpp"
#include "io/pipeline.hpp"

namespace pdc::clouds {

enum class SplitMethod : int { kSS = 0, kSSE = 1, kDirect = 2 };

struct CloudsConfig {
  SplitMethod method = SplitMethod::kSSE;

  /// Number of intervals at the root; q shrinks proportionally with node
  /// size, never below q_min (the paper uses q_root = 10,000 and switches
  /// techniques when q reaches 10).
  int q_root = 1000;
  int q_min = 10;

  /// Sampling rate for the pre-drawn sample set S when the caller does not
  /// supply a sample explicitly.
  double sample_rate = 0.05;

  // --- stopping criteria: "until each partition consists entirely or
  // --- dominantly of examples from one class", plus practical guards.
  double purity_stop = 1.0;   ///< leaf when max class fraction >= this
  std::int64_t min_records = 2;
  std::int32_t max_depth = 24;

  /// Async double-buffered streaming for the out-of-core passes; off by
  /// default (the synchronous path is the differential-test oracle).
  io::PipelineConfig pipeline;

  /// Interval budget for a node of n records out of n_root.
  int q_for(std::uint64_t node_records, std::uint64_t root_records) const {
    if (root_records == 0) return q_min;
    const double frac = static_cast<double>(node_records) /
                        static_cast<double>(root_records);
    const int q = static_cast<int>(frac * q_root);
    return std::max(q_min, std::min(q_root, q));
  }
};

/// The shared stopping rule: leaf when the node is (dominantly) pure, too
/// small, or too deep.  Used by the sequential builder and by pCLOUDS so
/// both grow identical trees.
bool stop_expansion(const CloudsConfig& cfg, const data::ClassCounts& counts,
                    std::int32_t depth);

/// Aggregated build diagnostics (fed by every node's split derivation).
struct BuildStats {
  std::size_t nodes_processed = 0;
  std::size_t leaves = 0;
  std::uint64_t records_scanned = 0;   ///< across all passes
  std::uint64_t second_pass_points = 0;
  double survival_sum = 0.0;           ///< sum of per-node survival ratios
  std::size_t survival_samples = 0;
  double root_survival = 0.0;          ///< survival ratio at the root node
  std::size_t out_of_core_nodes = 0;
  std::size_t in_core_nodes = 0;

  double mean_survival() const {
    return survival_samples == 0 ? 0.0
                                 : survival_sum /
                                       static_cast<double>(survival_samples);
  }
};

class CloudsBuilder {
 public:
  explicit CloudsBuilder(CloudsConfig cfg, CostHooks hooks = {})
      : cfg_(cfg), hooks_(hooks) {}

  /// In-core build.  `sample` is the node-filtered pre-drawn sample set S;
  /// pass an empty span to have the builder take a deterministic
  /// every-k-th subsample of `data`.
  DecisionTree build(std::span<const data::Record> data,
                     std::span<const data::Record> sample = {});

  /// Out-of-core build: `file` on `disk` holds the training records; the
  /// sample set stays in memory.  Nodes whose data fits in `budget` are
  /// loaded and finished in-core; larger nodes are processed by streaming.
  DecisionTree build_out_of_core(io::LocalDisk& disk, const std::string& file,
                                 std::vector<data::Record> sample,
                                 const io::MemoryBudget& budget);

  const BuildStats& stats() const { return stats_; }
  const CloudsConfig& config() const { return cfg_; }

 private:
  struct InCoreTask {
    std::int32_t node;
    std::vector<data::Record> data;
    std::vector<data::Record> sample;
    std::int32_t depth;
  };

  bool should_stop(const data::ClassCounts& counts, std::int32_t depth) const;
  SplitCandidate derive_split(RecordSource& source,
                              std::span<const data::Record> sample,
                              std::span<const data::Record> records_if_memory,
                              std::uint64_t node_records,
                              std::uint64_t root_records);
  void build_subtree_in_core(DecisionTree& tree, InCoreTask task,
                             std::uint64_t root_records);

  CloudsConfig cfg_;
  CostHooks hooks_;
  BuildStats stats_;
};

}  // namespace pdc::clouds
