#pragma once

// Decision-tree model persistence: a versioned binary format so trained
// classifiers can be saved, shipped and reloaded (TreeNode is trivially
// copyable and layout-checked, making the serialization a header plus the
// raw node arena).

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "clouds/tree.hpp"
#include "common/wire.hpp"

namespace pdc::clouds {

namespace detail {
inline constexpr std::uint32_t kTreeMagic = 0x70646354;  // "pdcT"
inline constexpr std::uint32_t kTreeVersion = 1;

struct TreeHeader {
  std::uint32_t magic = kTreeMagic;
  std::uint32_t version = kTreeVersion;
  std::uint64_t node_count = 0;
};
}  // namespace detail

inline void save_tree(const DecisionTree& tree,
                      const std::filesystem::path& path) {
  // pdc: io-wrapper(model persistence at the run boundary, outside the modeled timeline)
  const auto nodes = tree.serialize();
  detail::TreeHeader header;
  header.node_count = nodes.size();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("save_tree: cannot create " + path.string());
  const bool ok =
      std::fwrite(&header, sizeof(header), 1, f) == 1 &&
      (nodes.empty() ||
       std::fwrite(nodes.data(), sizeof(TreeNode), nodes.size(), f) ==
           nodes.size());
  std::fclose(f);
  if (!ok) throw std::runtime_error("save_tree: short write " + path.string());
}

/// Reads a model file's leading magic (0 on a missing/short file), so
/// callers that accept both interpreted trees ("pdcT") and compiled serve
/// blobs (serve/compiled_tree.hpp) can dispatch without trial parsing.
inline std::uint32_t peek_model_magic(const std::filesystem::path& path) {
  // pdc: io-wrapper(model persistence at the run boundary, outside the modeled timeline)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::uint32_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1) magic = 0;
  std::fclose(f);
  return magic;
}

inline DecisionTree load_tree(const std::filesystem::path& path) {
  // pdc: io-wrapper(model persistence at the run boundary, outside the modeled timeline)
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw WireError("load_tree: cannot open " + path.string());
  detail::TreeHeader header;
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    throw WireError("load_tree: truncated header " + path.string());
  }
  if (header.magic != detail::kTreeMagic ||
      header.version != detail::kTreeVersion) {
    std::fclose(f);
    throw WireError("load_tree: bad magic/version " + path.string());
  }
  // Size the claim against the actual file before allocating: a corrupt
  // node_count must not turn into a multi-gigabyte allocation attempt.
  const long payload_start = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long file_end = std::ftell(f);
  std::fseek(f, payload_start, SEEK_SET);
  const auto payload =
      static_cast<std::uint64_t>(file_end - payload_start);
  if (header.node_count > payload / sizeof(TreeNode)) {
    std::fclose(f);
    throw WireError("load_tree: node count overruns the file " +
                    path.string());
  }
  std::vector<TreeNode> nodes(header.node_count);
  if (header.node_count != 0 &&
      std::fread(nodes.data(), sizeof(TreeNode), nodes.size(), f) !=
          nodes.size()) {
    std::fclose(f);
    throw WireError("load_tree: truncated nodes " + path.string());
  }
  std::fclose(f);
  return DecisionTree::deserialize(std::move(nodes));
}

}  // namespace pdc::clouds
