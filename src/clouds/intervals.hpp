#pragma once

// Interval machinery for the SS/SSE methods.
//
// CLOUDS divides the range of each numeric attribute into q intervals that
// contain approximately the same number of points, using a pre-drawn random
// sample set S.  Gini is then evaluated only at the q-1 interior interval
// boundaries (one pass over the data fills the per-interval class frequency
// vectors), instead of at every distinct attribute value.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "clouds/gini.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

/// Equi-depth interior boundaries from sample values: at most q-1 ascending
/// distinct cut points; interval j covers (b[j-1], b[j]] with b[-1] = -inf
/// and b[q-1] = +inf.  Fewer boundaries are returned when the sample has
/// fewer distinct values.
inline std::vector<float> equi_depth_boundaries(std::vector<float> sample,
                                                int q) {
  std::vector<float> bounds;
  if (q <= 1 || sample.empty()) return bounds;
  std::sort(sample.begin(), sample.end());
  bounds.reserve(static_cast<std::size_t>(q - 1));
  const auto n = sample.size();
  for (int j = 1; j < q; ++j) {
    // Upper edge of the j-th equi-depth bucket of the sample.
    const auto idx = std::min(n - 1, n * static_cast<std::size_t>(j) /
                                         static_cast<std::size_t>(q));
    const float b = sample[idx];
    if (bounds.empty() || b > bounds.back()) bounds.push_back(b);
  }
  // A boundary equal to the sample maximum would make the last interval
  // empty for the sample; it still works for unseen data, so keep it.
  return bounds;
}

/// Per-attribute interval histogram: boundaries plus one class frequency
/// vector per interval.  There are bounds.size() + 1 intervals.
struct IntervalHist {
  std::vector<float> bounds;            ///< ascending interior boundaries
  std::vector<data::ClassCounts> freq;  ///< size bounds.size() + 1

  void reset_counts() {
    freq.assign(bounds.size() + 1, data::ClassCounts{});
  }

  std::size_t interval_count() const { return bounds.size() + 1; }

  /// Index of the interval containing `v`: first j with v <= bounds[j],
  /// else the last interval.
  std::size_t interval_of(float v) const {
    const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
    return static_cast<std::size_t>(it - bounds.begin());
  }

  void add(float v, std::int8_t label) {
    ++freq[interval_of(v)][static_cast<std::size_t>(label)];
  }

  /// Class counts at or below boundary j (i.e. the left side of the split
  /// "value <= bounds[j]"), computed by prefix sum over intervals 0..j.
  /// The paper performs exactly this prefix-sum step before evaluating gini
  /// at the boundary points.
  std::vector<data::ClassCounts> prefix_counts() const {
    std::vector<data::ClassCounts> prefix(bounds.size());
    data::ClassCounts acc{};
    for (std::size_t j = 0; j < bounds.size(); ++j) {
      acc += freq[j];
      prefix[j] = acc;
    }
    return prefix;
  }

  data::ClassCounts total_counts() const {
    data::ClassCounts acc{};
    for (const auto& f : freq) acc += f;
    return acc;
  }
};

/// Builds interval histograms (zeroed counts) for all numeric attributes
/// from the node's sample records.
inline std::vector<IntervalHist> build_interval_hists(
    std::span<const data::Record> sample, int q) {
  std::vector<IntervalHist> hists(data::kNumNumeric);
  std::vector<float> values(sample.size());
  for (int a = 0; a < data::kNumNumeric; ++a) {
    for (std::size_t i = 0; i < sample.size(); ++i) {
      values[i] = sample[i].num[static_cast<std::size_t>(a)];
    }
    hists[static_cast<std::size_t>(a)].bounds =
        equi_depth_boundaries(values, q);
    hists[static_cast<std::size_t>(a)].reset_counts();
  }
  return hists;
}

}  // namespace pdc::clouds
