#include "clouds/prune.hpp"

#include <cmath>
#include <functional>

#include "data/record.hpp"

namespace pdc::clouds {

double mdl_leaf_cost(const data::ClassCounts& counts) {
  const double n = static_cast<double>(data::total(counts));
  if (n <= 0.0) return 1.0;
  double bits = 0.0;
  for (auto c : counts) {
    if (c > 0) {
      const double f = static_cast<double>(c) / n;
      bits += -static_cast<double>(c) * std::log2(f);
    }
  }
  const double param_bits = 0.5 * (data::kNumClasses - 1) * std::log2(n + 1);
  return 1.0 + bits + param_bits;
}

PruneStats mdl_prune(DecisionTree& tree, const PruneConfig& cfg) {
  PruneStats stats;
  stats.nodes_before = tree.live_count();
  const double split_bits =
      std::log2(static_cast<double>(data::kNumAttributes)) +
      cfg.split_value_bits;

  // Returns the MDL cost of the (possibly pruned) subtree rooted at id.
  std::function<double(std::int32_t)> prune_walk =
      [&](std::int32_t id) -> double {
    const double leaf_cost = mdl_leaf_cost(tree.node(id).counts);
    if (tree.node(id).leaf) return leaf_cost;
    const double subtree_cost = 1.0 + split_bits +
                                prune_walk(tree.node(id).left) +
                                prune_walk(tree.node(id).right);
    if (leaf_cost <= subtree_cost) {
      tree.collapse(id);
      ++stats.collapsed;
      return leaf_cost;
    }
    return subtree_cost;
  };
  prune_walk(tree.root());
  stats.nodes_after = tree.live_count();
  return stats;
}

}  // namespace pdc::clouds
