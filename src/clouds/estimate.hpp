#pragma once

// Gini lower-bound estimation for the SSE method.
//
// For an interval with prefix counts L (everything left of the interval),
// in-interval counts I and suffix counts R, any split point inside the
// interval yields left = L + t and right = R + (I - t) with 0 <= t_k <= I_k
// componentwise.  The weighted gini
//
//   g(t) = (|L+t|/n) gini(L+t) + (|R+I-t|/n) gini(R+I-t)
//
// is a CONCAVE function of t (each term is linear minus a jointly-convex
// sum-of-squares-over-sum), so its minimum over the box [0, I] is attained
// at a vertex.  Enumerating the 2^k vertices therefore yields the exact
// minimum of the continuous relaxation — a true lower bound gini_est for
// every discrete split inside the interval.  Intervals with
// gini_est < gini_min are "alive" and get re-evaluated point by point.
//
// (CLOUDS describes gini_est as a heuristic estimate; the vertex bound used
// here is both cheap — 2^k with k = #classes — and conservative, so the SSE
// second pass can never miss the best splitter.)

#include <cstdint>

#include "clouds/gini.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

/// Exact minimum of the continuous relaxation of the in-interval weighted
/// gini; a valid lower bound for every split point inside the interval.
inline double gini_lower_bound(const data::ClassCounts& before,
                               const data::ClassCounts& inside,
                               const data::ClassCounts& after) {
  double best = split_gini(before, [&] {
    data::ClassCounts r = after;
    r += inside;
    return r;
  }());
  for (std::uint32_t vertex = 1; vertex < (1u << data::kNumClasses);
       ++vertex) {
    data::ClassCounts left = before;
    data::ClassCounts right = after;
    for (int k = 0; k < data::kNumClasses; ++k) {
      const auto idx = static_cast<std::size_t>(k);
      if ((vertex >> k) & 1u) {
        left[idx] += inside[idx];
      } else {
        right[idx] += inside[idx];
      }
    }
    const double g = split_gini(left, right);
    if (g < best) best = g;
  }
  return best;
}

}  // namespace pdc::clouds
