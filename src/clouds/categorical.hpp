#pragma once

// Categorical attribute evaluation.  CLOUDS handles categorical attributes
// exactly as SPRINT does: a count matrix (value x class) is accumulated in
// the same pass that fills the numeric interval histograms, and the best
// binary subset split is derived from the matrix alone — no further passes.
//
// For low-cardinality attributes the optimal subset is found exhaustively
// (2^(c-1) candidates); above kExhaustiveLimit a standard greedy hill-climb
// is used, as in SPRINT.

#include <cstdint>
#include <span>
#include <vector>

#include "clouds/gini.hpp"
#include "clouds/split.hpp"
#include "data/record.hpp"

namespace pdc::clouds {

inline constexpr int kExhaustiveLimit = 12;

/// value x class count matrix for one categorical attribute.
struct CountMatrix {
  int attr = 0;
  std::vector<data::ClassCounts> counts;  ///< indexed by attribute value

  explicit CountMatrix(int attribute = 0)
      : attr(attribute),
        counts(static_cast<std::size_t>(
            data::kCatCardinality[static_cast<std::size_t>(attribute)])) {}

  void add(const data::Record& r) {
    ++counts[static_cast<std::size_t>(
        r.cat[static_cast<std::size_t>(attr)])]
            [static_cast<std::size_t>(r.label)];
  }

  /// For callers that carry (value, label) pairs instead of whole records
  /// (e.g. SPRINT attribute lists).
  void add(int value, std::int8_t label) {
    ++counts[static_cast<std::size_t>(value)][static_cast<std::size_t>(label)];
  }

  data::ClassCounts total() const {
    data::ClassCounts acc{};
    for (const auto& c : counts) acc += c;
    return acc;
  }

  /// Flattened counts, for element-wise global combines across processors.
  std::vector<std::int64_t> flatten() const {
    std::vector<std::int64_t> out;
    out.reserve(counts.size() * data::kNumClasses);
    for (const auto& c : counts) {
      for (int k = 0; k < data::kNumClasses; ++k) {
        out.push_back(c[static_cast<std::size_t>(k)]);
      }
    }
    return out;
  }

  void unflatten(std::span<const std::int64_t> flat) {
    for (std::size_t v = 0; v < counts.size(); ++v) {
      for (int k = 0; k < data::kNumClasses; ++k) {
        counts[v][static_cast<std::size_t>(k)] =
            flat[v * data::kNumClasses + static_cast<std::size_t>(k)];
      }
    }
  }
};

namespace detail {

inline SplitCandidate exhaustive_subset(const CountMatrix& m) {
  SplitCandidate best;
  const int card = static_cast<int>(m.counts.size());
  const data::ClassCounts total = m.total();
  // Enumerate subsets containing value 0 (complement symmetry halves work);
  // skip empty/full splits.
  const std::uint32_t limit = 1u << (card - 1);
  for (std::uint32_t half = 0; half < limit; ++half) {
    const std::uint32_t subset = (half << 1) | 1u;
    data::ClassCounts left{};
    for (int v = 0; v < card; ++v) {
      if ((subset >> v) & 1u) left += m.counts[static_cast<std::size_t>(v)];
    }
    const auto right = total - left;
    if (data::total(left) == 0 || data::total(right) == 0) continue;
    Split s;
    s.kind = Split::Kind::kCategorical;
    s.attr = static_cast<std::int8_t>(m.attr);
    s.subset = subset;
    best.consider(split_gini(left, right), s);
  }
  return best;
}

inline SplitCandidate greedy_subset(const CountMatrix& m) {
  SplitCandidate best;
  const int card = static_cast<int>(m.counts.size());
  const data::ClassCounts total = m.total();
  std::uint32_t subset = 0;
  data::ClassCounts left{};
  // Greedily move the value that most improves gini; record the best split
  // seen along the trajectory.
  for (int step = 0; step < card - 1; ++step) {
    int best_v = -1;
    double best_g = 0.0;
    for (int v = 0; v < card; ++v) {
      if ((subset >> v) & 1u) continue;
      auto l = left;
      l += m.counts[static_cast<std::size_t>(v)];
      const auto r = total - l;
      if (data::total(r) == 0) continue;
      const double g = split_gini(l, r);
      if (best_v < 0 || g < best_g) {
        best_v = v;
        best_g = g;
      }
    }
    if (best_v < 0) break;
    subset |= 1u << best_v;
    left += m.counts[static_cast<std::size_t>(best_v)];
    if (data::total(left) > 0 && data::total(total - left) > 0) {
      Split s;
      s.kind = Split::Kind::kCategorical;
      s.attr = static_cast<std::int8_t>(m.attr);
      s.subset = subset;
      best.consider(best_g, s);
    }
  }
  return best;
}

}  // namespace detail

/// Best binary subset split for one categorical attribute.
inline SplitCandidate best_categorical_split(const CountMatrix& m) {
  if (static_cast<int>(m.counts.size()) <= kExhaustiveLimit) {
    return detail::exhaustive_subset(m);
  }
  return detail::greedy_subset(m);
}

/// Fresh (zeroed) count matrices for all categorical attributes.
inline std::vector<CountMatrix> make_count_matrices() {
  std::vector<CountMatrix> out;
  out.reserve(data::kNumCategorical);
  for (int a = 0; a < data::kNumCategorical; ++a) out.emplace_back(a);
  return out;
}

}  // namespace pdc::clouds
