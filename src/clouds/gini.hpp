#pragma once

// Gini index computations.  All of CART/SLIQ/SPRINT/CLOUDS derive their
// splitting criterion from the gini index of the two partitions induced by a
// candidate split; pCLOUDS picks the split with the global minimum weighted
// gini.

#include <cstdint>

#include "data/record.hpp"

namespace pdc::clouds {

using data::ClassCounts;

/// gini(S) = 1 - sum_k (n_k / n)^2.  Zero for a pure set; by convention
/// zero for an empty set.
inline double gini(const ClassCounts& counts) {
  const double n = static_cast<double>(data::total(counts));
  if (n <= 0.0) return 0.0;
  double sumsq = 0.0;
  for (auto c : counts) {
    const double f = static_cast<double>(c) / n;
    sumsq += f * f;
  }
  return 1.0 - sumsq;
}

/// Weighted gini of a binary split:
///   gini_split = (n_L/n) gini(L) + (n_R/n) gini(R).
/// Lower is better.  Splits with an empty side are useless for partitioning;
/// they still evaluate to gini of the whole set.
inline double split_gini(const ClassCounts& left, const ClassCounts& right) {
  const double nl = static_cast<double>(data::total(left));
  const double nr = static_cast<double>(data::total(right));
  const double n = nl + nr;
  if (n <= 0.0) return 0.0;
  return (nl / n) * gini(left) + (nr / n) * gini(right);
}

}  // namespace pdc::clouds
